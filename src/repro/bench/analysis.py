"""Cross-cutting analyses of Section 5: best styles (Fig 14), style
combinations (Fig 15), and graph-property correlations (Section 5.13).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.properties import GraphProperties, analyze
from ..styles.axes import (
    Determinism,
    Driver,
    Dup,
    Flow,
    Granularity,
    Iteration,
    Model,
    Persistence,
    Update,
)
from ..runtime.launcher import RunResult
from .harness import StudyResults

__all__ = [
    "BEST_STYLE_AXES",
    "best_style_percentages",
    "COMBINATION_STYLES",
    "style_combination_matrix",
    "property_correlations",
]

#: Figure 14's six pair-dimensions: the axes applicable to all three
#: programming models.
BEST_STYLE_AXES: Dict[str, Tuple] = {
    "iteration": (Iteration.VERTEX, Iteration.EDGE),
    "driver": (Driver.TOPOLOGY, Driver.DATA),
    "dup": (Dup.DUP, Dup.NODUP),
    "flow": (Flow.PUSH, Flow.PULL),
    "update": (Update.READ_WRITE, Update.READ_MODIFY_WRITE),
    "determinism": (Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC),
}


def best_style_percentages(
    results: StudyResults,
) -> Dict[Model, Dict[str, Dict[str, float]]]:
    """Figure 14: per model, the share of each style option among the
    best-performing codes.

    For every (model, algorithm, input, device) cell the single
    highest-throughput variant is selected; the table reports, per model
    and axis option, the percentage of those winners using that option
    (among winners for which the axis applies).
    """
    best: Dict[Tuple, RunResult] = {}
    for run in results.runs:
        key = (run.spec.model, run.spec.algorithm, run.graph, run.device)
        cur = best.get(key)
        if cur is None or run.throughput_ges > cur.throughput_ges:
            best[key] = run
    out: Dict[Model, Dict[str, Dict[str, float]]] = {}
    for model in Model:
        winners = [r for k, r in best.items() if k[0] is model]
        table: Dict[str, Dict[str, float]] = {}
        for axis, options in BEST_STYLE_AXES.items():
            applicable = [
                r for r in winners if r.spec.axis_value(axis) is not None
            ]
            if not applicable:
                table[axis] = {}
                continue
            counts = {
                opt.value: sum(
                    1 for r in applicable if r.spec.axis_value(axis) is opt
                )
                for opt in options
            }
            total = sum(counts.values())
            table[axis] = {name: c / total for name, c in counts.items()}
        out[model] = table
    return out


#: Figure 15's style options (rows and columns of the CUDA matrix).
COMBINATION_STYLES: List[Tuple[str, object]] = [
    ("iteration", Iteration.VERTEX),
    ("iteration", Iteration.EDGE),
    ("driver", Driver.TOPOLOGY),
    ("driver", Driver.DATA),
    ("dup", Dup.DUP),
    ("dup", Dup.NODUP),
    ("flow", Flow.PUSH),
    ("flow", Flow.PULL),
    ("update", Update.READ_WRITE),
    ("update", Update.READ_MODIFY_WRITE),
    ("determinism", Determinism.DETERMINISTIC),
    ("determinism", Determinism.NON_DETERMINISTIC),
    ("persistence", Persistence.PERSISTENT),
    ("persistence", Persistence.NON_PERSISTENT),
]


def style_combination_matrix(
    results: StudyResults, *, model: Model = Model.CUDA
) -> Tuple[List[str], np.ndarray]:
    """Figure 15: how well style X combines with style Y.

    Entry (x, y) is the median throughput of the runs using both X and Y
    divided by the median throughput of the runs using X but not Y
    (NaN when either set is empty).  Returns (labels, matrix).
    """
    runs = list(results.select(models=[model]))
    labels = [f"{opt.value}" for _axis, opt in COMBINATION_STYLES]
    k = len(COMBINATION_STYLES)
    matrix = np.full((k, k), np.nan)
    masks = []
    for axis, opt in COMBINATION_STYLES:
        masks.append(
            np.array([run.spec.axis_value(axis) is opt for run in runs], dtype=bool)
        )
    thr = np.array([run.throughput_ges for run in runs])
    for i, (axis_i, _opt_i) in enumerate(COMBINATION_STYLES):
        for j, (axis_j, _opt_j) in enumerate(COMBINATION_STYLES):
            if i == j or axis_i == axis_j:
                continue
            with_y = masks[i] & masks[j]
            without_y = masks[i] & ~masks[j]
            if with_y.any() and without_y.any():
                matrix[i, j] = float(
                    np.median(thr[with_y]) / np.median(thr[without_y])
                )
    return labels, matrix


def property_correlations(
    results: StudyResults,
    properties: Optional[Dict[str, GraphProperties]] = None,
    *,
    styles: Optional[Sequence[Tuple[str, object]]] = None,
) -> Dict[Tuple[str, str], float]:
    """Section 5.13: correlate throughput with graph properties.

    For every (style option, graph property) pair, computes the Pearson
    correlation between the property value and the throughput of the runs
    using that option, with throughputs z-scored within each
    (algorithm, model, device) group so the correlation isolates the
    input's effect (raw throughputs differ across algorithms by orders of
    magnitude, which would swamp any input effect).
    """
    if properties is None:
        properties = {
            name: analyze(graph) for name, graph in results.graphs.items()
        }
    if styles is None:
        styles = COMBINATION_STYLES + [
            ("granularity", Granularity.THREAD),
            ("granularity", Granularity.WARP),
            ("granularity", Granularity.BLOCK),
        ]
    prop_fields = {
        "size_mb": lambda p: p.size_mb,
        "avg_degree": lambda p: p.avg_degree,
        "max_degree": lambda p: float(p.max_degree),
        "pct_deg_ge_32": lambda p: p.pct_deg_ge_32,
        "pct_deg_ge_512": lambda p: p.pct_deg_ge_512,
        "diameter": lambda p: float(p.diameter),
    }
    # z-score throughputs within (algorithm, model, device) groups.
    groups: Dict[Tuple, List[int]] = {}
    runs = results.runs
    for idx, run in enumerate(runs):
        groups.setdefault(
            (run.spec.algorithm, run.spec.model, run.device), []
        ).append(idx)
    z = np.zeros(len(runs))
    log_thr = np.log(np.array([r.throughput_ges for r in runs]))
    for idxs in groups.values():
        vals = log_thr[idxs]
        std = vals.std()
        z[idxs] = (vals - vals.mean()) / (std if std > 0 else 1.0)

    out: Dict[Tuple[str, str], float] = {}
    for axis, opt in styles:
        mask = np.array(
            [run.spec.axis_value(axis) is opt for run in runs], dtype=bool
        )
        if not mask.any():
            continue
        sel_z = z[mask]
        for prop_name, getter in prop_fields.items():
            pvals = np.array(
                [getter(properties[runs[i].graph]) for i in np.flatnonzero(mask)]
            )
            if pvals.std() == 0 or sel_z.std() == 0:
                continue
            r = float(np.corrcoef(pvals, sel_z)[0, 1])
            out[(f"{axis}={opt.value}", prop_name)] = r
    return out
