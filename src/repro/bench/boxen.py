"""Letter-value ("boxen plot") statistics.

Section 4.5: the paper visualizes throughput-ratio distributions with boxen
plots, which recursively halve the data into letter values (median,
fourths, eighths, ...).  This module computes the same structure
numerically so the benchmark harness can print and assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["LetterValues", "letter_values"]


@dataclass(frozen=True)
class LetterValues:
    """Letter-value summary of one distribution."""

    n: int
    median: float
    #: (lower, upper) bounds per depth: fourths, eighths, sixteenths, ...
    boxes: Tuple[Tuple[float, float], ...]
    outliers: Tuple[float, ...]
    minimum: float
    maximum: float

    @property
    def fourths(self) -> Tuple[float, float]:
        """The innermost box (the interquartile range)."""
        if not self.boxes:
            return (self.median, self.median)
        return self.boxes[0]

    def describe(self) -> str:
        lo, hi = self.fourths
        return (
            f"n={self.n} median={self.median:.4g} "
            f"IQR=[{lo:.4g}, {hi:.4g}] range=[{self.minimum:.4g}, {self.maximum:.4g}]"
        )


def _trustworthy_depth(n: int) -> int:
    """Number of letter-value levels with enough data to be reliable.

    Follows the Hofmann/Wickham/Kafadar rule used by seaborn's boxenplot:
    keep halving while the tail contains at least ~5 observations.
    """
    depth = 0
    tail = n
    while tail // 2 >= 5:
        tail //= 2
        depth += 1
    return max(depth, 1)


def letter_values(data: Sequence[float]) -> LetterValues:
    """Compute the letter-value summary of ``data``.

    Raises ``ValueError`` on empty input.
    """
    arr = np.asarray(list(data), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("letter_values requires at least one observation")
    arr = np.sort(arr)
    n = arr.size
    median = float(np.median(arr))
    depth = _trustworthy_depth(n)
    boxes: List[Tuple[float, float]] = []
    p = 0.25
    for _ in range(depth):
        lo = float(np.quantile(arr, p))
        hi = float(np.quantile(arr, 1.0 - p))
        boxes.append((lo, hi))
        p /= 2.0
    inner_lo = float(np.quantile(arr, p * 2.0))
    inner_hi = float(np.quantile(arr, 1.0 - p * 2.0))
    outliers = tuple(
        float(x) for x in arr[(arr < inner_lo) | (arr > inner_hi)]
    )
    return LetterValues(
        n=n,
        median=median,
        boxes=tuple(boxes),
        outliers=outliers,
        minimum=float(arr[0]),
        maximum=float(arr[-1]),
    )
