"""Optimized third-party baseline codes (Section 5.17, Figure 16, Table 6).

The paper compares its style-generated (unoptimized) codes against the
optimized Lonestar CPU and Gardenia GPU implementations.  Those codebases
are not reproducible line-for-line here, so each baseline is modeled from
the paper's own description of *why* it performs the way it does:

* **Gardenia SSSP** "employs two extra arrays that make the code as
  efficient as the data-driven approach but without the overhead of
  maintaining a worklist"; **Lonestar SSSP** "combines the data-driven
  approach with a priority scheduler that processes the vertices in
  ascending distance to reduce the total amount of work" — both are
  modeled as near-work-optimal executions (each edge relaxed ~once, in
  distance order), which is exactly why they beat Bellman-Ford-style codes.
* **Gardenia PR/TC** "include an optimization that removes redundant
  edges" — the TC baseline orients edges by degree (provably less merge
  work) and the PR baseline halves the redundant gather traffic.
* **Lonestar MIS** runs on Galois' speculative-execution runtime, whose
  per-activity locking/commit overhead is what makes the paper's simple
  style-generated MIS 6x-21x faster on CPUs.
* The **BFS/CC baselines** are conventional frontier/label codes with the
  deterministic double-buffer structure typical of library implementations.

Every baseline still *executes* on the real input graph (frontiers,
settle orders, merge costs are exact), and is timed by the same machine
models as the styled codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..kernels.base import INF
from ..kernels.serial import serial_bfs, serial_sssp
from ..machine.trace import ExecutionTrace, IterationProfile
from ..styles.axes import (
    Algorithm,
    AtomicFlavor,
    CpuReduction,
    Granularity,
    Model,
    OmpSchedule,
    Persistence,
)
from ..styles.spec import StyleSpec

__all__ = ["BaselineRun", "baseline_trace", "baseline_style", "BASELINES"]


@dataclass(frozen=True)
class BaselineRun:
    """A baseline implementation's trace plus the mapping it is timed under."""

    name: str
    trace: ExecutionTrace
    style: StyleSpec


def baseline_style(algorithm: Algorithm, model: Model) -> StyleSpec:
    """The mapping axes the baselines are timed under.

    Library codes use sensible mappings: thread granularity,
    non-persistent launches, classic atomics, the reduction clause on
    CPUs, and default scheduling.  (The StyleSpec is used for timing only
    and deliberately not validated against Table 2.)
    """
    if model is Model.CUDA:
        return StyleSpec(
            algorithm=algorithm,
            model=model,
            granularity=Granularity.THREAD,
            persistence=Persistence.NON_PERSISTENT,
            atomic_flavor=AtomicFlavor.ATOMIC,
        )
    if model is Model.OPENMP:
        return StyleSpec(
            algorithm=algorithm,
            model=model,
            omp_schedule=OmpSchedule.DEFAULT,
            cpu_reduction=CpuReduction.CLAUSE,
        )
    return StyleSpec(algorithm=algorithm, model=model)


# ----------------------------------------------------------------------
# BFS: frontier code with deterministic double-buffer + compaction pass.
# ----------------------------------------------------------------------
def _bfs_baseline(graph: CSRGraph, source: int, model: Model) -> ExecutionTrace:
    levels = serial_bfs(graph, source)
    trace = ExecutionTrace(
        n_edges=graph.n_edges, n_vertices=graph.n_vertices, label="baseline-bfs"
    )
    trace.add(IterationProfile(n_items=graph.n_vertices, shared_stores_base=1.0, label="init"))
    reached = levels[levels < INF]
    depth = int(reached.max()) if reached.size else 0
    deg = graph.degrees
    for level in range(depth):
        frontier = np.flatnonzero(levels == level)
        trace.add(
            IterationProfile(
                n_items=frontier.size,
                inner=deg[frontier],
                base_cycles=2.0,
                inner_cycles=2.0,
                struct_loads_base=3.0,
                struct_loads_inner=1.0,
                shared_loads_inner=1.0,  # visited check
                atomics_inner=0.5,  # CAS claims on undiscovered targets
                hot_atomics=float(np.count_nonzero(levels == level + 1)) + 1.0,
                label="bfs-frontier",
            )
        )
        # Library frontier compaction kernel per level.
        trace.add(
            IterationProfile(
                n_items=frontier.size,
                base_cycles=1.0,
                shared_loads_base=1.0,
                shared_stores_base=1.0,
                label="bfs-compact",
            )
        )
        trace.iterations += 1
    return trace


# ----------------------------------------------------------------------
# SSSP: priority / two-array near-work-optimal execution.
# ----------------------------------------------------------------------
def _sssp_baseline(graph: CSRGraph, source: int, model: Model) -> ExecutionTrace:
    dist = serial_sssp(graph, source)
    trace = ExecutionTrace(
        n_edges=graph.n_edges, n_vertices=graph.n_vertices, label="baseline-sssp"
    )
    trace.add(IterationProfile(n_items=graph.n_vertices, shared_stores_base=1.0, label="init"))
    finite = dist[dist < INF]
    if finite.size == 0:
        return trace
    # Delta-stepping-like buckets: vertices settle in ascending distance,
    # each relaxing its out-edges approximately once.
    delta = max(1.0, float(np.median(graph.weights)) * 2.0) if graph.weights is not None else 1.0
    buckets = (dist[dist < INF] / delta).astype(np.int64)
    deg = graph.degrees
    settled = np.flatnonzero(dist < INF)
    order = np.argsort(buckets, kind="stable")
    settled = settled[order]
    bucket_ids = buckets[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], bucket_ids[1:] != bucket_ids[:-1]))
    )
    boundaries = np.concatenate((boundaries, [settled.size]))
    for b in range(boundaries.size - 1):
        members = settled[boundaries[b] : boundaries[b + 1]]
        # ~15% of relaxations repeat inside a bucket (light-edge re-runs).
        trace.add(
            IterationProfile(
                n_items=members.size,
                inner=(deg[members] * 1.15).astype(np.int64),
                base_cycles=3.0,
                inner_cycles=2.0,
                struct_loads_base=3.0,
                struct_loads_inner=2.0,
                shared_loads_base=1.0,
                atomics_inner=1.0,
                atomic_minmax=False,  # bucket updates are CAS-based
                hot_atomics=float(members.size) + 1.0,
                label="sssp-bucket",
            )
        )
        trace.iterations += 1
    return trace


# ----------------------------------------------------------------------
# CC: GPU hooking passes; CPU union-find sweep.
# ----------------------------------------------------------------------
def _cc_baseline(graph: CSRGraph, source: int, model: Model) -> ExecutionTrace:
    trace = ExecutionTrace(
        n_edges=graph.n_edges, n_vertices=graph.n_vertices, label="baseline-cc"
    )
    n, m = graph.n_vertices, graph.n_edges
    trace.add(IterationProfile(n_items=n, shared_stores_base=1.0, label="init"))
    if model is Model.CUDA:
        # Afforest-style: hooking sweeps over the edges (each edge chases
        # both endpoints' parent chains) plus pointer-jumping compression
        # passes over the vertices.
        for _ in range(4):
            trace.add(
                IterationProfile(
                    n_items=m,
                    base_cycles=4.0,
                    struct_loads_base=2.0,
                    shared_loads_base=5.0,  # parent chains of both sides
                    atomics_base=0.3,  # successful hooks only
                    atomic_minmax=True,
                    label="cc-hook",
                )
            )
            trace.add(
                IterationProfile(
                    n_items=n,
                    base_cycles=2.0,
                    shared_loads_base=3.0,
                    shared_stores_base=0.7,
                    label="cc-compress",
                )
            )
            trace.iterations += 1
    else:
        # Parallel union-find: two hooking sweeps with ~3 parent chases
        # per endpoint under contention, then a compression pass.
        for _ in range(2):
            trace.add(
                IterationProfile(
                    n_items=m,
                    base_cycles=5.0,
                    struct_loads_base=2.0,
                    shared_loads_base=6.0,
                    atomics_base=0.3,
                    atomic_minmax=False,  # CAS hooks
                    label="cc-unionfind",
                )
            )
            trace.iterations += 1
        trace.add(
            IterationProfile(
                n_items=n,
                base_cycles=2.0,
                shared_loads_base=3.0,
                shared_stores_base=1.0,
                label="cc-finalize",
            )
        )
    return trace


# ----------------------------------------------------------------------
# MIS: Galois speculative-execution runtime (CPU only).
# ----------------------------------------------------------------------
def _mis_baseline(graph: CSRGraph, source: int, model: Model) -> ExecutionTrace:
    trace = ExecutionTrace(
        n_edges=graph.n_edges, n_vertices=graph.n_vertices, label="baseline-mis"
    )
    n = graph.n_vertices
    trace.add(IterationProfile(n_items=n, shared_stores_base=1.0, label="init"))
    # Each activity locks its neighborhood (one CAS per neighbor), decides,
    # commits, and pays the runtime's per-activity bookkeeping; ~20% of
    # activities abort on conflicts and retry.
    n_activities = int(n * 1.2)
    trace.add(
        IterationProfile(
            n_items=n_activities,
            inner=graph.degrees[np.arange(n_activities) % n],
            base_cycles=60.0,  # Galois activity setup/commit bookkeeping
            inner_cycles=3.0,
            struct_loads_base=3.0,
            struct_loads_inner=1.0,
            shared_loads_inner=1.0,
            atomics_inner=1.0,  # neighborhood locks
            atomic_minmax=False,
            hot_atomics=float(n) * 1.2 + 1.0,  # worklist traffic
            label="mis-speculative",
        )
    )
    trace.iterations += 1
    return trace


# ----------------------------------------------------------------------
# PR: Gardenia's redundancy-eliminated pull (GPU); Lonestar's atomic push
# (CPU).
# ----------------------------------------------------------------------
def _pr_baseline(graph: CSRGraph, source: int, model: Model) -> ExecutionTrace:
    from ..kernels.pr import DAMPING, PageRankKernel, TOLERANCE
    from ..styles.spec import SemanticKey
    from ..styles.axes import Determinism, Driver, Flow, Iteration, Update

    kernel = PageRankKernel(graph)
    if model is Model.CUDA:
        sem = SemanticKey(
            Algorithm.PR, Iteration.VERTEX, Driver.TOPOLOGY, None,
            Flow.PULL, Update.READ_MODIFY_WRITE, Determinism.DETERMINISTIC,
        )
        result = kernel.run(sem)
        trace = result.trace
        # Redundant-edge elimination halves the gather traffic.
        for p in trace.profiles:
            if p.inner is not None:
                p.inner = p.inner // 2
        trace.label = "baseline-pr-dedup"
        return trace
    # CPU baseline: push with per-edge atomic adds and an atomic error sum.
    sem = SemanticKey(
        Algorithm.PR, Iteration.VERTEX, Driver.TOPOLOGY, None,
        Flow.PUSH, Update.READ_MODIFY_WRITE, Determinism.DETERMINISTIC,
    )
    result = kernel.run(sem)
    result.trace.label = "baseline-pr-push"
    return result.trace


# ----------------------------------------------------------------------
# TC: degree-ordered orientation (GPU); unoriented edge-iterator (CPU).
# ----------------------------------------------------------------------
def _tc_baseline(graph: CSRGraph, source: int, model: Model) -> ExecutionTrace:
    n, m = graph.n_vertices, graph.n_edges
    trace = ExecutionTrace(n_edges=m, n_vertices=n, iterations=1, label="baseline-tc")
    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    deg = graph.degrees
    if model is Model.CUDA:
        # Orient every edge from lower (degree, id) to higher: the classic
        # redundancy-eliminating preprocessing.  Merge costs are computed
        # with the real degree-ordered forward degrees.
        rank = np.lexsort((np.arange(n), deg))
        pos = np.empty(n, dtype=np.int64)
        pos[rank] = np.arange(n)
        fwd_mask = pos[src] < pos[dst]
        fdeg = np.bincount(src[fwd_mask], minlength=n).astype(np.int64)
        merge = fdeg[src[fwd_mask]] + fdeg[dst[fwd_mask]]
        trips = np.zeros(m, dtype=np.int64)
        trips[fwd_mask] = merge
        trace.add(
            IterationProfile(
                n_items=m,
                inner=trips,
                base_cycles=2.0,
                inner_cycles=1.5,
                struct_loads_base=3.0,
                struct_loads_inner=1.0,
                reduction_items=float(np.count_nonzero(fwd_mask) // 4),
                label="tc-ordered",
            )
        )
        return trace
    # CPU baseline: unoriented edge iterator — every directed edge merges
    # the two full adjacency lists (each triangle counted six times).
    merge_all = deg[src] + deg[dst]
    trace.add(
        IterationProfile(
            n_items=m,
            inner=merge_all.astype(np.int64),
            base_cycles=2.0,
            inner_cycles=1.5,
            struct_loads_base=3.0,
            struct_loads_inner=1.0,
            reduction_items=float(m) / 2.0,
            label="tc-unoriented",
        )
    )
    return trace


_BUILDERS: Dict[Algorithm, Callable[[CSRGraph, int, Model], ExecutionTrace]] = {
    Algorithm.BFS: _bfs_baseline,
    Algorithm.SSSP: _sssp_baseline,
    Algorithm.CC: _cc_baseline,
    Algorithm.MIS: _mis_baseline,
    Algorithm.PR: _pr_baseline,
    Algorithm.TC: _tc_baseline,
}

#: Which baselines exist per model family (Gardenia has no MIS —
#: Section 5.17 / Figure 16a).
BASELINES: Dict[Model, Tuple[Algorithm, ...]] = {
    Model.CUDA: (
        Algorithm.BFS, Algorithm.SSSP, Algorithm.CC, Algorithm.PR, Algorithm.TC,
    ),
    Model.OPENMP: tuple(Algorithm),
    Model.CPP_THREADS: tuple(Algorithm),
}


def baseline_trace(
    algorithm: Algorithm, graph: CSRGraph, model: Model, source: int = 0
) -> BaselineRun:
    """Build the baseline implementation's trace for one problem instance."""
    if algorithm not in BASELINES[model]:
        raise ValueError(
            f"no {model.value} baseline for {algorithm.value} (Section 5.17)"
        )
    trace = _BUILDERS[algorithm](graph, source, model)
    return BaselineRun(
        name=f"{'gardenia' if model is Model.CUDA else 'lonestar'}-{algorithm.value}",
        trace=trace,
        style=baseline_style(algorithm, model),
    )
