"""Pairwise style-ratio computation (the Section 5 methodology).

"Each of the following subsections compares the performance of two or three
alternative styles while keeping the other styles fixed" — for every run
using option A of an axis, the partner run is the one whose spec differs
*only* in that axis (same algorithm, model, device, input, and every other
style); the ratio is ``throughput_A / throughput_B``.  A ratio above 1.0
means the first-named style is faster.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..styles.axes import Algorithm, Model
from .harness import StudyResults

__all__ = ["axis_ratios", "ratios_by_algorithm", "throughputs_by_option"]


def axis_ratios(
    results: StudyResults,
    axis: str,
    option_a,
    option_b,
    *,
    algorithms: Optional[Iterable[Algorithm]] = None,
    models: Optional[Iterable[Model]] = None,
    devices: Optional[Iterable[str]] = None,
    graphs: Optional[Iterable[str]] = None,
) -> np.ndarray:
    """All pairwise throughput ratios option_a / option_b for one axis."""
    grouped = ratios_by_algorithm(
        results, axis, option_a, option_b,
        algorithms=algorithms, models=models, devices=devices, graphs=graphs,
    )
    if not grouped:
        return np.empty(0)
    return np.concatenate(list(grouped.values()))


def ratios_by_algorithm(
    results: StudyResults,
    axis: str,
    option_a,
    option_b,
    *,
    algorithms: Optional[Iterable[Algorithm]] = None,
    models: Optional[Iterable[Model]] = None,
    devices: Optional[Iterable[str]] = None,
    graphs: Optional[Iterable[str]] = None,
) -> Dict[Algorithm, np.ndarray]:
    """Pairwise ratios grouped per algorithm (the paper's figure layout)."""
    from dataclasses import fields

    from ..styles.spec import StyleSpec

    valid_axes = {f.name for f in fields(StyleSpec)} - {"algorithm", "model"}
    if axis not in valid_axes:
        raise KeyError(f"unknown style axis {axis!r}; known: {sorted(valid_axes)}")
    out: Dict[Algorithm, List[float]] = {}
    for run in results.select(
        algorithms=algorithms, models=models, devices=devices, graphs=graphs
    ):
        if run.spec.axis_value(axis) is not option_a:
            continue
        partner_spec = run.spec.with_axis(**{axis: option_b})
        partner = results.get(partner_spec, run.device, run.graph)
        if partner is None:
            continue  # the B option does not exist for this combination
        out.setdefault(run.spec.algorithm, []).append(
            run.throughput_ges / partner.throughput_ges
        )
    return {alg: np.asarray(vals) for alg, vals in out.items()}


def throughputs_by_option(
    results: StudyResults,
    axis: str,
    *,
    algorithms: Optional[Iterable[Algorithm]] = None,
    models: Optional[Iterable[Model]] = None,
    devices: Optional[Iterable[str]] = None,
    graphs: Optional[Iterable[str]] = None,
) -> Dict[object, np.ndarray]:
    """Raw throughputs grouped by an axis's option (for the three-way
    comparisons of Figures 9-11, where ratios would be unwieldy)."""
    out: Dict[object, List[float]] = {}
    for run in results.select(
        algorithms=algorithms, models=models, devices=devices, graphs=graphs
    ):
        option = run.spec.axis_value(axis)
        if option is None:
            continue
        out.setdefault(option, []).append(run.throughput_ges)
    return {opt: np.asarray(vals) for opt, vals in out.items()}
