"""Fault-tolerant parallel sweep engine: supervised (algorithm, graph)
block workers.

The sweep's natural work unit is one (algorithm, graph) *block*: all
program variants of one algorithm on one input, across every model and
device.  Blocks share nothing but the deterministic input graphs, so they
fan out over worker processes perfectly.  Graphs reach the workers through
the zero-copy shared-memory plane (:mod:`repro.graph.shm`): the supervisor
publishes each graph's CSR arrays once, workers attach read-only views —
no per-worker rebuild, no pickling — and fall back to a local rebuild if
the plane is gone.  Each worker executes its block with the batched
launcher and ships only the compact :class:`RunResult` list back.

Because attaching a graph is free, the plane also unlocks a *finer* work
unit: when there are more workers than (algorithm, graph) blocks, a block
is split into **semantic shards** — disjoint subsets of its semantic style
combinations, every mapping variant and device of each combination staying
with its shard.  Shard results are reassembled in the serial run order, so
the split changes wall-clock time and nothing else.

With surplus workers the shards are *work-stolen* rather than statically
assigned: every block splits into its finest units (one shard per semantic
group) and a pool of persistent workers pulls units from the supervisor's
shared queue until it drains (:class:`_StealingPool`).  Semantic groups
differ wildly in cost — a BFS frontier trace versus a one-launch TC pass —
so static ceil(workers/blocks) sharding leaves late workers idle behind
one expensive shard; pulling keeps every worker busy until the queue is
empty, which is what lets ``--workers`` beyond the block count keep
scaling.  ``$REPRO_WORK_STEALING=0`` (or ``work_stealing=False``) restores
the static sharding + one-process-per-shard engine.

Unlike a bare process pool, the engine *supervises* its workers:

* a per-block timeout (``--block-timeout`` / ``$REPRO_BLOCK_TIMEOUT``)
  kills hung workers instead of wedging the sweep;
* failed, crashed, or timed-out blocks are retried with bounded
  exponential backoff, then once more in the supervisor's own process
  (the *serial fallback*, which distinguishes a worker-environment fault
  — a killed process, a bad fork — from a genuine kernel bug);
* blocks that still fail are quarantined into the failure manifest on
  :class:`StudyResults` while every healthy block completes;
* a variant that fails verification inside a block costs only its own
  grid cells (recorded per (spec, device) in the manifest), never the
  block;
* every healthy block streams to an atomic, checksummed checkpoint
  (:mod:`repro.bench.checkpoint`), so ``resume=True`` skips finished
  blocks after a crash or Ctrl-C;
* SIGINT and dead workers always tear the worker set down cleanly.

The simulator is deterministic by design, so the parallel engine is
*bit-identical* to the serial path: blocks are reassembled in the serial
iteration order and every worker performs exactly the computations the
serial sweep would.  ``workers=1`` (or a single block) executes the
blocks in-process, in order.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graph import shm
from ..graph.csr import CSRGraph
from ..graph.datasets import DATASETS, EXTRA_DATASETS, load_all
from ..graph.shm import SharedGraphHandle, SharedGraphPlane
from ..runtime.errors import ErrorClass, FailedRun, error_digest
from ..runtime.launcher import Launcher, RunResult
from ..styles.axes import Algorithm, Model
from ..styles.combos import enumerate_specs
from ..styles.spec import SemanticKey, StyleSpec
from . import faults
from .checkpoint import BlockOutcome, CheckpointStore
from .harness import StudyResults, SweepConfig, sweep_block_runs

__all__ = [
    "SweepBlock",
    "BlockOutcome",
    "partition_blocks",
    "semantic_shard_order",
    "shard_blocks",
    "resolve_workers",
    "resolve_work_stealing",
    "run_sweep_parallel",
    "stderr_progress",
]

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment override for the per-block timeout (seconds, float).
BLOCK_TIMEOUT_ENV = "REPRO_BLOCK_TIMEOUT"

#: Environment toggle for the work-stealing shard scheduler (default on;
#: ``0``/``false``/``no``/``off`` disable it).
WORK_STEALING_ENV = "REPRO_WORK_STEALING"

#: Default number of worker retries before the serial fallback.
DEFAULT_MAX_RETRIES = 2

#: First-retry backoff in seconds; doubles per retry.
DEFAULT_RETRY_BACKOFF = 0.25

#: Supervisor poll interval (seconds).
_TICK = 0.05

#: Called after each finished block: ``progress(done, total, block)``.
ProgressFn = Callable[[int, int, "SweepBlock"], None]


@dataclass(frozen=True)
class SweepBlock:
    """One unit of parallel work: every variant of one algorithm on one
    input graph, across the configured models and devices.

    Workers rebuild the graph from ``(graph_name, scale)`` through the
    dataset registry; ``graph`` carries the actual object only when the
    caller supplied custom inputs that the registry cannot rebuild.
    """

    algorithm: Algorithm
    graph_name: str
    scale: str
    models: Tuple[Model, ...]
    gpu_names: Tuple[str, ...]
    cpu_names: Tuple[str, ...]
    verify: bool
    max_footprint_bytes: Optional[int] = None
    trace_cache: bool = True
    #: Which semantic shard of the block this is (see :func:`shard_blocks`);
    #: ``n_shards == 1`` means the whole block.
    shard: int = 0
    n_shards: int = 1
    #: Shared-memory plane handle: workers attach instead of rebuilding.
    shm_handle: Optional[SharedGraphHandle] = field(default=None, compare=False)
    graph: Optional[CSRGraph] = field(default=None, compare=False)

    @property
    def config(self) -> SweepConfig:
        """The single-block SweepConfig this block executes."""
        return SweepConfig(
            scale=self.scale,
            models=self.models,
            algorithms=(self.algorithm,),
            gpu_names=self.gpu_names,
            cpu_names=self.cpu_names,
            graphs=(self.graph_name,),
            verify=self.verify,
            max_footprint_bytes=self.max_footprint_bytes,
            trace_cache=self.trace_cache,
        )

    @property
    def key(self) -> Tuple[str, ...]:
        """Stable block identity, used by the checkpoint.

        ``(algorithm, graph)`` for a whole block; semantic shards append a
        ``shard-i-of-n`` component, so a resume with a different worker
        count (hence a different sharding) re-runs the affected blocks
        instead of mis-resuming partial ones.
        """
        if self.n_shards == 1:
            return (self.algorithm.value, self.graph_name)
        return (
            self.algorithm.value,
            self.graph_name,
            f"shard-{self.shard}-of-{self.n_shards}",
        )

    def specs_for(self, model: Model) -> List[StyleSpec]:
        """This block's program variants of one model (shard-filtered)."""
        specs = enumerate_specs(self.algorithm, model)
        if self.n_shards == 1:
            return specs
        order = semantic_shard_order(self.algorithm, self.models)
        return [
            spec
            for spec in specs
            if order[spec.semantic_key()] % self.n_shards == self.shard
        ]


def partition_blocks(
    config: SweepConfig, graphs: Optional[Dict[str, CSRGraph]] = None
) -> List[SweepBlock]:
    """Split a sweep into its (algorithm, graph) blocks, in serial order.

    When ``graphs`` is provided, each block carries its graph object to the
    worker (a caller-supplied graph may differ from what the registry would
    rebuild under the same name); registry inputs ship as name + scale only.
    """
    names = (
        list(graphs)
        if graphs is not None
        else list(config.graphs) if config.graphs is not None
        else list(DATASETS)
    )
    blocks = []
    for algorithm in config.algorithms:
        for name in names:
            payload = None if graphs is None else graphs[name]
            blocks.append(
                SweepBlock(
                    algorithm=algorithm,
                    graph_name=name,
                    scale=config.scale,
                    models=tuple(config.models),
                    gpu_names=tuple(config.gpu_names),
                    cpu_names=tuple(config.cpu_names),
                    verify=config.verify,
                    max_footprint_bytes=config.max_footprint_bytes,
                    trace_cache=config.trace_cache,
                    graph=payload,
                )
            )
    return blocks


def semantic_shard_order(
    algorithm: Algorithm, models: Sequence[Model]
) -> Dict[SemanticKey, int]:
    """First-appearance order of semantic combinations across models.

    :class:`SemanticKey` excludes the programming model, so one semantic
    trace serves every model's mapping variants — shards must therefore
    keep *equal* semantic keys together or the trace would execute once
    per shard.  The order is a pure function of (algorithm, models), so
    publisher and every worker derive the same sharding independently.
    """
    order: Dict[SemanticKey, int] = {}
    for model in models:
        for spec in enumerate_specs(algorithm, model):
            key = spec.semantic_key()
            if key not in order:
                order[key] = len(order)
    return order


def shard_blocks(
    blocks: List[SweepBlock], workers: int, *, fine: bool = False
) -> List[SweepBlock]:
    """Split shared-memory-backed blocks into semantic shards.

    Only useful when workers would otherwise idle (``workers`` exceeds the
    block count) and only safe when the graph ships as a plane handle
    (attaching is free; rebuilding per shard would multiply graph-build
    time).  Shards of one block stay adjacent and ordered, which is what
    lets :func:`run_sweep_parallel` reassemble serial run order.

    ``fine=True`` splits every block into its finest units — one shard
    per semantic group — for the work-stealing scheduler, whose dynamic
    pulling makes many small units an advantage instead of a dispatch
    cost.  The fine shard count depends only on the block (not on
    ``workers``), so checkpoint keys stay stable across worker counts.
    """
    if workers <= len(blocks):
        return blocks
    target = None if fine else -(-workers // len(blocks))  # ceil per block
    out: List[SweepBlock] = []
    for block in blocks:
        n = 1
        if block.shm_handle is not None and block.n_shards == 1:
            n_groups = len(semantic_shard_order(block.algorithm, block.models))
            n = n_groups if target is None else min(n_groups, target)
        if n <= 1:
            out.append(block)
            continue
        out.extend(replace(block, shard=s, n_shards=n) for s in range(n))
    return out


def _build_block_graph(block: SweepBlock) -> CSRGraph:
    if block.shm_handle is not None:
        try:
            return shm.attach_graph(block.shm_handle)
        except shm.SharedGraphGone:
            pass  # plane gone: rebuild locally below
    if block.graph is not None:
        return block.graph
    spec = {**DATASETS, **EXTRA_DATASETS}[block.graph_name]
    return spec.build(block.scale)


def run_block(block: SweepBlock) -> List[RunResult]:
    """Execute one block in the current process and return its runs.

    This is the exact per-block body of the serial sweep (which is what
    makes the two paths bit-identical); any failure propagates.  The
    supervised engine goes through :func:`run_block_outcome` instead, which
    captures per-variant failures and honours the fault-injection plan.
    """
    graph = _build_block_graph(block)
    config = block.config
    launcher = Launcher(
        verify=block.verify,
        budget=config.budget(),
        trace_store=config.trace_store(),
    )
    runs: List[RunResult] = []
    for model in block.models:
        runs.extend(
            sweep_block_runs(
                launcher, block.specs_for(model), graph,
                config.devices_for(model),
            )
        )
    launcher.release(graph, block.algorithm)
    return runs


def run_block_outcome(block: SweepBlock, attempt: int = 0) -> BlockOutcome:
    """Execute one block, capturing per-variant failures.

    A variant whose verification or execution fails becomes a
    :class:`FailedRun` in the outcome; the rest of the block still runs.
    Whole-block failures (including injected ones) propagate to the
    supervisor, which owns the retry policy.
    """
    faults.inject_block_fault(block.algorithm.value, block.graph_name, attempt)
    graph = _build_block_graph(block)
    faults.inject_attached_fault(
        block.algorithm.value, block.graph_name, attempt
    )
    config = block.config
    launcher = Launcher(
        verify=block.verify,
        budget=config.budget(),
        trace_store=config.trace_store(),
    )
    faults.apply_verify_faults(launcher, block, attempt)
    outcome = BlockOutcome()
    for model in block.models:
        outcome.runs.extend(
            sweep_block_runs(
                launcher, block.specs_for(model), graph,
                config.devices_for(model),
                failures=outcome.failures,
            )
        )
    launcher.release(graph, block.algorithm)
    outcome.kernel_executions = launcher.kernel_executions
    return outcome


def resolve_workers(
    workers: Optional[int], n_blocks: Optional[int] = None
) -> int:
    """Worker count: explicit argument, else ``$REPRO_SWEEP_WORKERS``, else
    all cores capped by the number of blocks (spawning 32 workers for a
    3-block sweep helps nobody)."""
    if workers is None:
        default = os.cpu_count() or 1
        if n_blocks is not None:
            default = max(1, min(default, n_blocks))
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV} must be a positive integer, got {env!r}"
                ) from None
        else:
            workers = default
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def resolve_block_timeout(block_timeout: Optional[float]) -> Optional[float]:
    """Per-block timeout: explicit argument, else ``$REPRO_BLOCK_TIMEOUT``,
    else none."""
    if block_timeout is None:
        env = os.environ.get(BLOCK_TIMEOUT_ENV)
        if env:
            try:
                block_timeout = float(env)
            except ValueError:
                raise ValueError(
                    f"${BLOCK_TIMEOUT_ENV} must be a number of seconds, "
                    f"got {env!r}"
                ) from None
    if block_timeout is not None and block_timeout <= 0:
        raise ValueError("block timeout must be positive")
    return block_timeout


def resolve_work_stealing(work_stealing: Optional[bool]) -> bool:
    """Work-stealing toggle: explicit argument, else ``$REPRO_WORK_STEALING``
    (default on; ``0``/``false``/``no``/``off`` disable)."""
    if work_stealing is not None:
        return work_stealing
    env = os.environ.get(WORK_STEALING_ENV, "").strip().lower()
    return env not in ("0", "false", "no", "off")


@contextmanager
def _sigterm_as_interrupt():
    """Translate SIGTERM into :class:`KeyboardInterrupt` for one sweep.

    A containerized shutdown (``docker stop``, a Kubernetes pod delete, a
    systemd unit stop) delivers SIGTERM, whose default disposition kills
    the supervisor instantly — leaking worker processes and skipping the
    checkpoint-preserving teardown that Ctrl-C (SIGINT) already gets.
    Re-raising it as :class:`KeyboardInterrupt` routes both signals
    through the identical cleanup path: workers reaped, the shared-memory
    plane unlinked, finished-block checkpoints kept for ``--resume``.

    Installed only in the main thread of the main interpreter (``signal``
    refuses anywhere else — e.g. a sweep run from a serving-plane worker
    thread, which relies on process-level supervision instead) and always
    restored on exit.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):  # non-main interpreter, exotic platform
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def stderr_progress(done: int, total: int, block: SweepBlock) -> None:
    """Default progress reporter: one stderr line per finished block."""
    label = f"{block.algorithm.value} x {block.graph_name}"
    if block.n_shards > 1:
        label += f" [shard {block.shard + 1}/{block.n_shards}]"
    print(f"[sweep {done}/{total}] {label}", file=sys.stderr, flush=True)


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
def _worker_main(conn, block: SweepBlock, attempt: int) -> None:
    """Entry point of one supervised worker process."""
    os.environ[faults.WORKER_ENV] = "1"
    try:
        outcome = run_block_outcome(block, attempt)
    except BaseException as exc:  # report, then die; supervisor retries
        try:
            conn.send(
                ("error", _classify_name(exc), f"{type(exc).__name__}: {exc}")
            )
            conn.close()
        except Exception:
            pass
        os._exit(1)
    try:
        conn.send(("ok", outcome))
        conn.close()
    except Exception:
        os._exit(1)


def _classify_name(exc: BaseException) -> str:
    from ..runtime.errors import classify_error

    return classify_error(exc).value


@dataclass
class _Supervised:
    """Book-keeping of one block while the supervisor owns it."""

    index: int
    block: SweepBlock
    attempt: int = 0
    process: Optional[multiprocessing.process.BaseProcess] = None
    conn: Optional[object] = None
    deadline: Optional[float] = None
    ready_at: float = 0.0
    message: Optional[tuple] = None


class _Supervisor:
    """Runs blocks in supervised worker processes with retry, timeout,
    serial fallback, and quarantine."""

    def __init__(
        self,
        *,
        workers: int,
        block_timeout: Optional[float],
        max_retries: int,
        retry_backoff: float,
        on_block_done: Callable[[int, BlockOutcome], None],
    ):
        self.workers = workers
        self.block_timeout = block_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.on_block_done = on_block_done
        self.ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )

    def run(self, tasks: List[_Supervised]) -> None:
        queue: List[_Supervised] = list(tasks)
        running: List[_Supervised] = []
        try:
            while queue or running:
                now = time.monotonic()
                for task in list(queue):
                    if len(running) >= self.workers:
                        break
                    if task.ready_at <= now:
                        queue.remove(task)
                        self._start(task)
                        running.append(task)
                if not running:
                    time.sleep(_TICK)
                    continue
                ready = multiprocessing.connection.wait(
                    [t.conn for t in running], timeout=_TICK
                )
                now = time.monotonic()
                finished: List[Tuple[_Supervised, bool]] = []
                for task in running:
                    if task.conn in ready:
                        try:
                            task.message = task.conn.recv()
                        except (EOFError, OSError):
                            task.message = None  # died before reporting
                        finished.append((task, False))
                    elif task.deadline is not None and now >= task.deadline:
                        task.message = (
                            "error",
                            ErrorClass.TIMEOUT.value,
                            f"block exceeded the {self.block_timeout:g}s "
                            "per-block timeout",
                        )
                        finished.append((task, True))
                for task, timed_out in finished:
                    running.remove(task)
                    self._reap(task, kill=timed_out)
                    self._handle(task, queue)
        except BaseException:
            # SIGINT, a supervisor bug, anything: never leak workers.
            for task in running:
                self._reap(task, kill=True)
            raise

    # ------------------------------------------------------------------
    def _start(self, task: _Supervised) -> None:
        recv_conn, send_conn = self.ctx.Pipe(duplex=False)
        task.process = self.ctx.Process(
            target=_worker_main,
            args=(send_conn, task.block, task.attempt),
            daemon=True,
        )
        task.process.start()
        # Close the parent's copy of the send end so a dead worker reads
        # as EOF instead of a wait that never returns.
        send_conn.close()
        task.conn = recv_conn
        task.message = None
        task.deadline = (
            None
            if self.block_timeout is None
            else time.monotonic() + self.block_timeout
        )

    def _reap(self, task: _Supervised, *, kill: bool) -> None:
        process = task.process
        if process is not None:
            if kill and process.is_alive():
                process.terminate()
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        if task.conn is not None:
            task.conn.close()
        task.conn = None

    def _handle(self, task: _Supervised, queue: List[_Supervised]) -> None:
        message = task.message
        if message is not None and message[0] == "ok":
            self.on_block_done(task.index, message[1])
            return
        if message is None:
            exitcode = task.process.exitcode if task.process else None
            error_class = ErrorClass.CRASH
            detail = f"worker process died (exit code {exitcode})"
        else:
            error_class = ErrorClass(message[1])
            detail = message[2]
        if task.attempt < self.max_retries:
            task.attempt += 1
            task.ready_at = (
                time.monotonic()
                + self.retry_backoff * (2 ** (task.attempt - 1))
            )
            task.process = None
            task.message = None
            queue.append(task)
            return
        attempts = task.attempt + 1
        if error_class is not ErrorClass.TIMEOUT:
            # Serial fallback: run the block once in this process.  A
            # worker-environment fault (killed process, broken fork) will
            # succeed here; a genuine kernel bug will fail again.
            try:
                outcome = run_block_outcome(task.block, attempt=attempts)
            except Exception as exc:
                error_class = ErrorClass(_classify_name(exc))
                detail = f"{type(exc).__name__}: {exc}"
                attempts += 1
            else:
                self.on_block_done(task.index, outcome)
                return
        # Quarantine: the block is recorded as failed; the sweep goes on.
        failure = FailedRun(
            algorithm=task.block.algorithm.value,
            graph=task.block.graph_name,
            error_class=error_class,
            message=detail,
            digest=error_digest(error_class, detail),
            stage="block",
            attempts=attempts,
        )
        self.on_block_done(task.index, BlockOutcome(failures=[failure]))


# ----------------------------------------------------------------------
# Work-stealing pool
# ----------------------------------------------------------------------
def _stealing_worker_main(conn) -> None:
    """Entry point of one persistent work-stealing worker.

    The worker *pulls*: it announces readiness, receives one unit, runs
    it, reports, and loops until the supervisor says stop.  Each reply
    carries the unit index so the parent never has to guess which unit a
    message belongs to after a respawn.
    """
    os.environ[faults.WORKER_ENV] = "1"
    try:
        conn.send(("ready",))
        while True:
            request = conn.recv()
            if request[0] == "stop":
                break
            _, index, block, attempt = request
            try:
                outcome = run_block_outcome(block, attempt)
            except BaseException as exc:
                conn.send(
                    (
                        "error",
                        index,
                        _classify_name(exc),
                        f"{type(exc).__name__}: {exc}",
                    )
                )
            else:
                conn.send(("ok", index, outcome))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent gone or tearing down: just exit
    finally:
        try:
            conn.close()
        except Exception:
            pass
    os._exit(0)


@dataclass
class _PoolWorker:
    """One persistent worker process of the stealing pool."""

    process: multiprocessing.process.BaseProcess
    conn: object
    #: The unit this worker currently holds (None = idle or not yet ready).
    task: Optional[_Supervised] = None
    idle: bool = False
    deadline: Optional[float] = None


class _StealingPool:
    """Runs fine shard units through a pool of persistent workers that
    pull from a shared queue, with the same retry / timeout / serial
    fallback / quarantine policy as :class:`_Supervisor`.

    Dispatch is parent-driven over per-worker duplex pipes rather than a
    shared ``multiprocessing.Queue``: killing a hung worker that holds
    the queue's feeder lock would deadlock its siblings, while a pipe
    dies with its worker.  Workers claim units by sending ``("ready",)``;
    the parent replies with the next eligible unit (or ``("stop",)`` once
    the queue drains), so units flow to whichever worker frees up first.
    """

    def __init__(
        self,
        *,
        workers: int,
        unit_timeout: Optional[float],
        max_retries: int,
        retry_backoff: float,
        on_unit_done: Callable[[int, BlockOutcome], None],
    ):
        self.workers = workers
        self.unit_timeout = unit_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.on_unit_done = on_unit_done
        self.ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )

    def run(self, tasks: List[_Supervised]) -> None:
        queue: List[_Supervised] = list(tasks)
        unresolved = len(tasks)
        pool: List[_PoolWorker] = [
            self._spawn() for _ in range(min(self.workers, len(tasks)))
        ]
        try:
            while unresolved > 0:
                now = time.monotonic()
                self._dispatch(pool, queue, now)
                ready = multiprocessing.connection.wait(
                    [w.conn for w in pool], timeout=_TICK
                )
                now = time.monotonic()
                for worker in list(pool):
                    if worker.conn in ready:
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            message = None  # worker died
                        if message is None:
                            unresolved -= self._crash(worker, pool, queue)
                            continue
                        if message[0] == "ready":
                            worker.idle = True
                            continue
                        unresolved -= self._finish(worker, message, queue)
                    elif (
                        worker.deadline is not None and now >= worker.deadline
                    ):
                        unresolved -= self._timeout(worker, pool, queue)
        finally:
            # Orderly or not, never leak workers.
            for worker in pool:
                self._stop(worker)

    # ------------------------------------------------------------------
    def _spawn(self) -> _PoolWorker:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        process = self.ctx.Process(
            target=_stealing_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process=process, conn=parent_conn)

    def _dispatch(
        self, pool: List[_PoolWorker], queue: List[_Supervised], now: float
    ) -> None:
        for worker in pool:
            if not worker.idle:
                continue
            task = next((t for t in queue if t.ready_at <= now), None)
            if task is None:
                return
            queue.remove(task)
            try:
                worker.conn.send(("task", task.index, task.block, task.attempt))
            except (BrokenPipeError, OSError):
                # Worker died between "ready" and dispatch; _crash on the
                # next wait() pass will respawn it.  Requeue the unit.
                queue.append(task)
                worker.idle = False
                continue
            worker.task = task
            worker.idle = False
            worker.deadline = (
                None
                if self.unit_timeout is None
                else now + self.unit_timeout
            )

    def _finish(
        self, worker: _PoolWorker, message: tuple, queue: List[_Supervised]
    ) -> int:
        task = worker.task
        worker.task = None
        worker.deadline = None
        worker.idle = True  # the worker loops straight back to recv
        if task is None or message[1] != task.index:
            return 0  # stale reply from a unit already resolved elsewhere
        if message[0] == "ok":
            self.on_unit_done(task.index, message[2])
            return 1
        return self._failed(
            task, ErrorClass(message[2]), message[3], queue
        )

    def _crash(
        self,
        worker: _PoolWorker,
        pool: List[_PoolWorker],
        queue: List[_Supervised],
    ) -> int:
        """A worker's pipe hit EOF: reap it, respawn, fail its unit."""
        task = worker.task
        exitcode = worker.process.exitcode
        self._stop(worker, kill=True)
        pool.remove(worker)
        pool.append(self._spawn())
        if task is None:
            return 0
        return self._failed(
            task,
            ErrorClass.CRASH,
            f"worker process died (exit code {exitcode})",
            queue,
        )

    def _timeout(
        self,
        worker: _PoolWorker,
        pool: List[_PoolWorker],
        queue: List[_Supervised],
    ) -> int:
        task = worker.task
        self._stop(worker, kill=True)
        pool.remove(worker)
        pool.append(self._spawn())
        if task is None:
            return 0
        return self._failed(
            task,
            ErrorClass.TIMEOUT,
            f"block exceeded the {self.unit_timeout:g}s per-block timeout",
            queue,
        )

    def _failed(
        self,
        task: _Supervised,
        error_class: ErrorClass,
        detail: str,
        queue: List[_Supervised],
    ) -> int:
        """Retry / serial fallback / quarantine — mirrors
        :meth:`_Supervisor._handle`.  Returns resolved-unit count (0 when
        the unit was requeued for retry)."""
        if task.attempt < self.max_retries:
            task.attempt += 1
            task.ready_at = (
                time.monotonic()
                + self.retry_backoff * (2 ** (task.attempt - 1))
            )
            queue.append(task)
            return 0
        attempts = task.attempt + 1
        if error_class is not ErrorClass.TIMEOUT:
            try:
                outcome = run_block_outcome(task.block, attempt=attempts)
            except Exception as exc:
                error_class = ErrorClass(_classify_name(exc))
                detail = f"{type(exc).__name__}: {exc}"
                attempts += 1
            else:
                self.on_unit_done(task.index, outcome)
                return 1
        failure = FailedRun(
            algorithm=task.block.algorithm.value,
            graph=task.block.graph_name,
            error_class=error_class,
            message=detail,
            digest=error_digest(error_class, detail),
            stage="block",
            attempts=attempts,
        )
        self.on_unit_done(task.index, BlockOutcome(failures=[failure]))
        return 1

    def _stop(self, worker: _PoolWorker, *, kill: bool = False) -> None:
        if not kill:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        process = worker.process
        if kill and process.is_alive():
            process.terminate()
        process.join(timeout=5)
        if process.is_alive():
            process.kill()
            process.join(timeout=5)
        try:
            worker.conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
def run_sweep_parallel(
    config: SweepConfig = SweepConfig(),
    *,
    workers: Optional[int] = None,
    chunksize: int = 1,  # kept for API compatibility; no longer used
    progress: Optional[ProgressFn] = None,
    graphs: Optional[Dict[str, CSRGraph]] = None,
    block_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    resume: bool = False,
    checkpoint_dir: Optional[str] = None,
    work_stealing: Optional[bool] = None,
) -> StudyResults:
    """Run the configured sweep across supervised worker processes.

    Bit-identical to :func:`repro.bench.run_sweep` on healthy blocks: same
    runs, same order, same floats.  Failures — a bad variant, a crashed or
    hung worker, a corrupted checkpoint entry — are captured into the
    result's failure manifest instead of aborting the sweep; see the
    module docstring for the supervision policy.

    ``workers=None`` uses ``$REPRO_SWEEP_WORKERS`` or the machine's core
    count capped by the block count; ``workers=1`` (or a single block)
    runs the blocks serially in-process.  ``block_timeout=None`` reads
    ``$REPRO_BLOCK_TIMEOUT`` (no timeout if unset).  Healthy blocks are
    checkpointed as they finish (registry inputs only — custom ``graphs``
    cannot be rebuilt on resume); ``resume=True`` skips blocks already
    checkpointed by an interrupted identical sweep.  The checkpoint is
    removed after a fully clean sweep and kept otherwise, so a follow-up
    ``resume=True`` retries exactly the quarantined blocks.

    When workers outnumber the (algorithm, graph) blocks, the surplus is
    absorbed by the work-stealing shard scheduler (see the module
    docstring): blocks split into their finest semantic units and a pool
    of persistent workers pulls them from a shared queue.
    ``work_stealing=None`` reads ``$REPRO_WORK_STEALING`` (default on);
    ``False`` keeps the static sharding + one-process-per-shard engine.
    """
    del chunksize  # block dispatch is per-process now
    block_timeout = resolve_block_timeout(block_timeout)
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if graphs is None:
        all_graphs = load_all(config.scale)
        graphs_for_results = (
            all_graphs
            if config.graphs is None
            else {name: all_graphs[name] for name in config.graphs}
        )
        blocks = partition_blocks(config)
        store: Optional[CheckpointStore] = CheckpointStore.for_config(
            config, checkpoint_dir
        )
    else:
        graphs_for_results = dict(graphs)
        blocks = partition_blocks(config, graphs_for_results)
        store = None  # custom graphs cannot be rebuilt on resume
    workers = resolve_workers(workers, len(blocks))
    # Work-stealing engages only with surplus workers; the comparison uses
    # the *unsharded* block count, so the decision (and hence the fine
    # checkpoint keys) does not depend on the sharding it triggers.
    stealing = resolve_work_stealing(work_stealing) and workers > len(blocks)

    # Publish the graphs once into the shared-memory plane: workers attach
    # read-only views instead of rebuilding (or unpickling) each graph,
    # and the free attach makes semantic shards a sensible finer work
    # unit when workers outnumber blocks.
    plane: Optional[SharedGraphPlane] = None
    if workers > 1 and len(blocks) > 1 and shm.shm_enabled():
        plane = SharedGraphPlane()
        blocks = [
            replace(
                block,
                shm_handle=plane.publish(
                    block.graph_name, graphs_for_results[block.graph_name]
                ),
                graph=None,
            )
            for block in blocks
        ]
        blocks = shard_blocks(blocks, workers, fine=stealing)
    total = len(blocks)

    outcomes: Dict[int, BlockOutcome] = {}
    if store is not None:
        if resume:
            expected = {i: b.key for i, b in enumerate(blocks)}
            outcomes.update(store.load(expected))
        else:
            store.clear()

    done_count = len(outcomes)
    if progress is not None:
        for done, index in enumerate(sorted(outcomes), start=1):
            progress(done, total, blocks[index])

    def record(index: int, outcome: BlockOutcome) -> None:
        nonlocal done_count
        outcomes[index] = outcome
        # Quarantined blocks are deliberately not checkpointed: a resumed
        # sweep should retry them, not inherit their failure.
        if store is not None and outcome.healthy:
            store.save_block(index, blocks[index].key, outcome)
        done_count += 1
        if progress is not None:
            progress(done_count, total, blocks[index])

    todo = [i for i in range(total) if i not in outcomes]
    try:
        with _sigterm_as_interrupt():
            if todo:
                if workers == 1 or len(todo) == 1:
                    _run_blocks_inprocess(blocks, todo, record)
                elif stealing:
                    pool = _StealingPool(
                        workers=workers,
                        unit_timeout=block_timeout,
                        max_retries=max_retries,
                        retry_backoff=retry_backoff,
                        on_unit_done=record,
                    )
                    pool.run([_Supervised(i, blocks[i]) for i in todo])
                else:
                    supervisor = _Supervisor(
                        workers=workers,
                        block_timeout=block_timeout,
                        max_retries=max_retries,
                        retry_backoff=retry_backoff,
                        on_block_done=record,
                    )
                    supervisor.run([_Supervised(i, blocks[i]) for i in todo])
    finally:
        if plane is not None:
            plane.close()

    # Reassemble in serial run order.  Shards of one block are adjacent in
    # the block list but stripe its semantic groups, so their merged runs
    # are re-sorted by the block's canonical (spec, device) positions —
    # which is what keeps the parallel path bit-identical to the serial
    # one regardless of worker count.
    results = StudyResults(graphs=graphs_for_results)
    clean = True
    index = 0
    while index < total:
        block = blocks[index]
        group = range(index, index + block.n_shards)
        index += block.n_shards
        runs: List[RunResult] = []
        for i in group:
            outcome = outcomes.get(i)
            if outcome is None:  # only possible if a callback misbehaved
                clean = False
                continue
            runs.extend(outcome.runs)
            for failure in outcome.failures:
                results.add_failure(failure)
            results.kernel_executions += outcome.kernel_executions
            clean = clean and not outcome.failures
        if block.n_shards > 1:
            positions = _canonical_positions(block)
            runs.sort(key=lambda run: positions[(run.spec, run.device)])
        for run in runs:
            results.add(run)
    if store is not None and clean:
        store.clear()
    return results


def _canonical_positions(
    block: SweepBlock,
) -> Dict[Tuple[StyleSpec, str], int]:
    """Serial run order of one block's (spec, device) cells."""
    config = block.config
    positions: Dict[Tuple[StyleSpec, str], int] = {}
    for model in block.models:
        for spec in enumerate_specs(block.algorithm, model):
            for device in config.devices_for(model):
                positions[(spec, device.name)] = len(positions)
    return positions


def _run_blocks_inprocess(
    blocks: List[SweepBlock],
    todo: List[int],
    record: Callable[[int, BlockOutcome], None],
) -> None:
    """The serial engine: same blocks, same order, no worker processes.

    Timeouts and crash recovery need process isolation and do not apply;
    a block that raises is quarantined directly.
    """
    for index in todo:
        block = blocks[index]
        try:
            outcome = run_block_outcome(block)
        except Exception as exc:
            error_class = ErrorClass(_classify_name(exc))
            detail = f"{type(exc).__name__}: {exc}"
            outcome = BlockOutcome(
                failures=[
                    FailedRun(
                        algorithm=block.algorithm.value,
                        graph=block.graph_name,
                        error_class=error_class,
                        message=detail,
                        digest=error_digest(error_class, detail),
                        stage="block",
                    )
                ]
            )
        record(index, outcome)
