"""Parallel sweep engine: (algorithm, graph) blocks over a process pool.

The sweep's natural work unit is one (algorithm, graph) *block*: all
program variants of one algorithm on one input, across every model and
device.  Blocks share nothing but the deterministic input graphs, so they
fan out over a ``multiprocessing`` pool perfectly — each worker rebuilds
its graph locally (graphs are deterministic to rebuild, the same property
:mod:`repro.bench.storage` relies on), executes the block with the batched
launcher, and ships only the compact :class:`RunResult` list back.

The simulator is deterministic by design, so the parallel engine is
*bit-identical* to the serial path: blocks are reassembled in the serial
iteration order and every worker performs exactly the computations the
serial sweep would.  ``workers=1`` (or a single block) falls back to the
in-process serial sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..graph.csr import CSRGraph
from ..graph.datasets import DATASETS, EXTRA_DATASETS, load_all
from ..runtime.launcher import Launcher, RunResult
from ..styles.axes import Algorithm, Model
from ..styles.combos import enumerate_specs
from .harness import StudyResults, SweepConfig, run_sweep, sweep_block_runs

__all__ = [
    "SweepBlock",
    "partition_blocks",
    "resolve_workers",
    "run_sweep_parallel",
    "stderr_progress",
]

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Called after each finished block: ``progress(done, total, block)``.
ProgressFn = Callable[[int, int, "SweepBlock"], None]


@dataclass(frozen=True)
class SweepBlock:
    """One unit of parallel work: every variant of one algorithm on one
    input graph, across the configured models and devices.

    Workers rebuild the graph from ``(graph_name, scale)`` through the
    dataset registry; ``graph`` carries the actual object only when the
    caller supplied custom inputs that the registry cannot rebuild.
    """

    algorithm: Algorithm
    graph_name: str
    scale: str
    models: Tuple[Model, ...]
    gpu_names: Tuple[str, ...]
    cpu_names: Tuple[str, ...]
    verify: bool
    graph: Optional[CSRGraph] = field(default=None, compare=False)

    @property
    def config(self) -> SweepConfig:
        """The single-block SweepConfig this block executes."""
        return SweepConfig(
            scale=self.scale,
            models=self.models,
            algorithms=(self.algorithm,),
            gpu_names=self.gpu_names,
            cpu_names=self.cpu_names,
            graphs=(self.graph_name,),
            verify=self.verify,
        )


def partition_blocks(
    config: SweepConfig, graphs: Optional[Dict[str, CSRGraph]] = None
) -> List[SweepBlock]:
    """Split a sweep into its (algorithm, graph) blocks, in serial order.

    When ``graphs`` is provided, each block carries its graph object to the
    worker (a caller-supplied graph may differ from what the registry would
    rebuild under the same name); registry inputs ship as name + scale only.
    """
    names = (
        list(graphs)
        if graphs is not None
        else list(config.graphs) if config.graphs is not None
        else list(DATASETS)
    )
    blocks = []
    for algorithm in config.algorithms:
        for name in names:
            payload = None if graphs is None else graphs[name]
            blocks.append(
                SweepBlock(
                    algorithm=algorithm,
                    graph_name=name,
                    scale=config.scale,
                    models=tuple(config.models),
                    gpu_names=tuple(config.gpu_names),
                    cpu_names=tuple(config.cpu_names),
                    verify=config.verify,
                    graph=payload,
                )
            )
    return blocks


def _build_block_graph(block: SweepBlock) -> CSRGraph:
    if block.graph is not None:
        return block.graph
    spec = {**DATASETS, **EXTRA_DATASETS}[block.graph_name]
    return spec.build(block.scale)


def run_block(block: SweepBlock) -> List[RunResult]:
    """Execute one block in the current process and return its runs.

    This is the pool's worker function; it is also the exact per-block body
    of the serial sweep, which is what makes the two paths bit-identical.
    """
    graph = _build_block_graph(block)
    launcher = Launcher(verify=block.verify)
    config = block.config
    runs: List[RunResult] = []
    for model in block.models:
        specs = enumerate_specs(block.algorithm, model)
        runs.extend(
            sweep_block_runs(launcher, specs, graph, config.devices_for(model))
        )
    launcher.release(graph, block.algorithm)
    return runs


def resolve_workers(workers: Optional[int]) -> int:
    """Worker count: explicit argument, else $REPRO_SWEEP_WORKERS, else all
    cores."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV} must be a positive integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def stderr_progress(done: int, total: int, block: SweepBlock) -> None:
    """Default progress reporter: one stderr line per finished block."""
    print(
        f"[sweep {done}/{total}] {block.algorithm.value} x {block.graph_name}",
        file=sys.stderr,
        flush=True,
    )


def run_sweep_parallel(
    config: SweepConfig = SweepConfig(),
    *,
    workers: Optional[int] = None,
    chunksize: int = 1,
    progress: Optional[ProgressFn] = None,
    graphs: Optional[Dict[str, CSRGraph]] = None,
) -> StudyResults:
    """Run the configured sweep across a process pool.

    Bit-identical to :func:`repro.bench.run_sweep`: same runs, same order,
    same floats.  ``workers=None`` uses ``$REPRO_SWEEP_WORKERS`` or the
    machine's core count; ``workers=1`` (or a single block) runs serially
    in-process.  ``chunksize`` batches blocks per pool dispatch for very
    fine-grained sweeps.
    """
    workers = resolve_workers(workers)
    if graphs is None:
        all_graphs = load_all(config.scale)
        graphs_for_results = (
            all_graphs
            if config.graphs is None
            else {name: all_graphs[name] for name in config.graphs}
        )
        blocks = partition_blocks(config)
    else:
        graphs_for_results = dict(graphs)
        blocks = partition_blocks(config, graphs_for_results)

    if workers == 1 or len(blocks) <= 1:
        results = run_sweep(config, graphs=graphs_for_results)
        if progress is not None:
            total = max(len(blocks), 1)
            for done, block in enumerate(blocks, start=1):
                progress(done, total, block)
        return results

    results = StudyResults(graphs=graphs_for_results)
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    total = len(blocks)
    with ctx.Pool(processes=min(workers, total)) as pool:
        # imap preserves submission order, so results assemble in the
        # serial sweep's (algorithm, graph) order no matter which worker
        # finishes first.
        for done, (block, runs) in enumerate(
            zip(blocks, pool.imap(run_block, blocks, chunksize=max(1, chunksize))),
            start=1,
        ):
            for run in runs:
                results.add(run)
            if progress is not None:
                progress(done, total, block)
    return results
