"""Section 5.16: derive the paper's programming guidelines from the data.

The paper closes its evaluation with a list of style recommendations.
This module re-derives each one *from the sweep results* (not hard-coded),
so the guideline text printed to users reflects what the reproduction
actually measured.  Each guideline carries the evidence behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..styles.axes import (
    Algorithm,
    AtomicFlavor,
    CppSchedule,
    CpuReduction,
    Determinism,
    Flow,
    Granularity,
    Model,
    OmpSchedule,
    Persistence,
    Update,
)
from .harness import StudyResults
from .ratios import axis_ratios, throughputs_by_option

__all__ = ["Guideline", "derive_guidelines"]


@dataclass(frozen=True)
class Guideline:
    """One recommendation plus the measurement backing it."""

    statement: str
    evidence: str
    holds: bool

    def render(self) -> str:
        marker = "+" if self.holds else "!"
        return f"[{marker}] {self.statement}\n      evidence: {self.evidence}"


def _median(values: np.ndarray) -> float:
    return float(np.median(values)) if values.size else float("nan")


def _option(grouped: dict, key) -> np.ndarray:
    """An option's throughputs, tolerating options missing entirely (a
    sweep with quarantined blocks can lose a whole style's runs; the
    guideline then reads nan and reports not-established instead of
    crashing)."""
    return grouped.get(key, np.empty(0))


def derive_guidelines(results: StudyResults) -> List[Guideline]:
    """Re-derive the Section 5.16 guidelines from the sweep."""
    out: List[Guideline] = []

    # 1. High-degree inputs prefer warp-based parallelization in CUDA.
    skewed = [
        name
        for name, g in results.graphs.items()
        if g.degrees.max() > 8 * max(g.degrees.mean(), 1)
    ] or ["soc-LiveJournal1"]
    uniform = [n for n in results.graphs if n not in skewed]
    warp_skew = throughputs_by_option(
        results, "granularity", models=[Model.CUDA], graphs=skewed
    )
    warp_uni = throughputs_by_option(
        results, "granularity", models=[Model.CUDA], graphs=uniform
    )
    rel_skew = _median(_option(warp_skew, Granularity.WARP)) / _median(
        _option(warp_skew, Granularity.THREAD)
    )
    rel_uni = _median(_option(warp_uni, Granularity.WARP)) / _median(
        _option(warp_uni, Granularity.THREAD)
    )
    out.append(
        Guideline(
            "High-degree inputs prefer warp-based parallelization in CUDA.",
            f"warp/thread median ratio {rel_skew:.2f} on skewed inputs vs "
            f"{rel_uni:.2f} on uniform ones",
            rel_skew > rel_uni,
        )
    )

    # 2. Use the non-deterministic and push styles everywhere.
    nondet = axis_ratios(
        results, "determinism",
        Determinism.NON_DETERMINISTIC, Determinism.DETERMINISTIC,
    )
    push = axis_ratios(results, "flow", Flow.PUSH, Flow.PULL,
                       algorithms=[a for a in Algorithm if a is not Algorithm.PR])
    out.append(
        Guideline(
            "Use the non-deterministic and push styles (all models).",
            f"median non-det/det ratio {_median(nondet):.2f}, "
            f"median push/pull ratio {_median(push):.2f} (PR excluded)",
            _median(nondet) >= 1.0 and _median(push) >= 1.0,
        )
    )

    # 3. Avoid default CudaAtomic and CPU critical sections.
    cudaatomic = axis_ratios(
        results, "atomic_flavor", AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC,
    )
    critical = throughputs_by_option(
        results, "cpu_reduction",
        models=[Model.OPENMP, Model.CPP_THREADS],
    )
    crit_penalty = _median(_option(critical, CpuReduction.CLAUSE)) / _median(
        _option(critical, CpuReduction.CRITICAL)
    )
    out.append(
        Guideline(
            "Avoid default CudaAtomic in GPU codes and critical sections "
            "in OpenMP/C++ programs.",
            f"classic Atomic is {_median(cudaatomic):.1f}x faster (median); "
            f"the reduction clause beats critical by {crit_penalty:.1f}x",
            _median(cudaatomic) > 2.0 and crit_penalty > 2.0,
        )
    )

    # 4. Vertex- vs edge-based depends on the algorithm.
    from ..styles.axes import Iteration

    per_alg = {
        alg: _median(
            axis_ratios(results, "iteration", Iteration.VERTEX, Iteration.EDGE,
                        algorithms=[alg])
        )
        for alg in (Algorithm.MIS, Algorithm.TC, Algorithm.BFS)
    }
    out.append(
        Guideline(
            "Whether to use vertex- or edge-based iteration depends on the "
            "algorithm.",
            "vertex/edge medians: "
            + ", ".join(f"{a.value}={r:.2f}" for a, r in per_alg.items()),
            per_alg[Algorithm.MIS] > 1.2
            and abs(per_alg[Algorithm.BFS] - 1.0) < 0.5,
        )
    )

    # 5. Persistent threads rarely help: prefer non-persistent.
    persist = axis_ratios(
        results, "persistence", Persistence.PERSISTENT, Persistence.NON_PERSISTENT,
    )
    out.append(
        Guideline(
            "Use non-persistent kernels (persistent threads rarely help).",
            f"persistent/non-persistent median ratio {_median(persist):.2f}",
            0.8 <= _median(persist) <= 1.2,
        )
    )

    # 6. Default/blocked schedules are the safe CPU choices.
    omp = axis_ratios(
        results, "omp_schedule", OmpSchedule.DEFAULT, OmpSchedule.DYNAMIC,
        models=[Model.OPENMP],
    )
    cpp = axis_ratios(
        results, "cpp_schedule", CppSchedule.BLOCKED, CppSchedule.CYCLIC,
        models=[Model.CPP_THREADS],
    )
    out.append(
        Guideline(
            "Start with default (OpenMP) / blocked (C++) scheduling; test "
            "alternatives only afterwards.",
            f"default/dynamic median {_median(omp):.2f}, "
            f"blocked/cyclic median {_median(cpp):.2f}",
            _median(omp) >= 1.0 and _median(cpp) >= 0.9,
        )
    )

    # 7. C++ prefers the topology-driven style.
    from ..styles.axes import Driver, Dup

    cpp_topo: List[float] = []
    for run in results.select(models=[Model.CPP_THREADS]):
        if run.spec.driver is not Driver.TOPOLOGY or run.spec.flow is Flow.PULL:
            continue
        partner = results.get(
            run.spec.with_axis(driver=Driver.DATA, dup=Dup.NODUP),
            run.device, run.graph,
        )
        if partner is not None:
            cpp_topo.append(run.throughput_ges / partner.throughput_ges)
    med_cpp_topo = _median(np.asarray(cpp_topo))
    out.append(
        Guideline(
            "C++ threads prefer the topology-driven style (the worklist "
            "overhead often cannot offset the work-efficiency benefit).",
            f"C++ topology/data-driven median ratio {med_cpp_topo:.2f}",
            med_cpp_topo > 0.8,
        )
    )

    # 8. Read-modify-write is a safe default (read-write is risky but
    # rarely much faster on GPUs).
    rw = axis_ratios(
        results, "update", Update.READ_WRITE, Update.READ_MODIFY_WRITE,
        models=[Model.CUDA],
    )
    out.append(
        Guideline(
            "Read-modify-write is a good general choice on GPUs "
            "(read-write wins only modestly and is less general).",
            f"GPU read-write/RMW median ratio {_median(rw):.2f}",
            _median(rw) < 3.0,
        )
    )

    return out
