"""CSV export of the study's results and figure data.

Text reports (`repro.bench.report`) are for reading; these exporters feed
plotting tools and spreadsheets: the raw sweep, any pairwise-ratio
figure's underlying observations, and the Fig. 15 matrix.
"""

from __future__ import annotations

import io

import numpy as np

from ..styles.axes import Model
from .analysis import style_combination_matrix
from .harness import StudyResults
from .ratios import ratios_by_algorithm
from .report import FIGURE_AXES

__all__ = [
    "sweep_to_csv",
    "figure_ratios_to_csv",
    "combination_matrix_to_csv",
    "failure_manifest_to_csv",
]


def sweep_to_csv(results: StudyResults) -> str:
    """Every run as one CSV row (the full study dataset)."""
    buf = io.StringIO()
    buf.write(
        "model,algorithm,graph,device,seconds,throughput_ges,iterations,"
        "launches,style\n"
    )
    for run in results.runs:
        buf.write(
            f"{run.spec.model.value},{run.spec.algorithm.value},"
            f"{run.graph},{run.device},{run.seconds:.6e},"
            f"{run.throughput_ges:.6f},{run.iterations},{run.launches},"
            f"{run.spec.label()}\n"
        )
    return buf.getvalue()


def failure_manifest_to_csv(results: StudyResults) -> str:
    """The failure manifest as CSV (empty data section when clean)."""
    buf = io.StringIO()
    buf.write(
        "stage,error_class,algorithm,model,graph,device,style,attempts,"
        "digest,message\n"
    )
    for f in results.failures:
        message = f.message.replace('"', "'").replace("\n", " ")
        buf.write(
            f"{f.stage},{f.error_class.value},{f.algorithm},"
            f"{f.model or ''},{f.graph},{f.device or ''},"
            f"{f.spec_label or ''},{f.attempts},{f.digest},\"{message}\"\n"
        )
    return buf.getvalue()


def figure_ratios_to_csv(results: StudyResults, figure: str) -> str:
    """The per-observation ratios behind one pairwise figure."""
    if figure not in FIGURE_AXES:
        raise KeyError(f"unknown figure {figure!r}; known: {sorted(FIGURE_AXES)}")
    _title, axis, a, b, models, devices, algorithms = FIGURE_AXES[figure]
    grouped = ratios_by_algorithm(
        results, axis, a, b,
        models=models, devices=devices, algorithms=algorithms,
    )
    buf = io.StringIO()
    buf.write(f"figure,algorithm,ratio_{a.value}_over_{b.value}\n")
    for alg, ratios in grouped.items():
        for value in ratios:
            buf.write(f"{figure},{alg.value},{value:.6f}\n")
    return buf.getvalue()


def combination_matrix_to_csv(
    results: StudyResults, *, model: Model = Model.CUDA
) -> str:
    """Figure 15's matrix as CSV (NaN for undefined cells)."""
    labels, matrix = style_combination_matrix(results, model=model)
    buf = io.StringIO()
    buf.write("style_x," + ",".join(labels) + "\n")
    for i, label in enumerate(labels):
        cells = ",".join(
            f"{matrix[i, j]:.4f}" if np.isfinite(matrix[i, j]) else ""
            for j in range(len(labels))
        )
        buf.write(f"{label},{cells}\n")
    return buf.getvalue()
