"""Full-study sweep harness.

Runs every enumerated program variant on every input graph and every
applicable device — the paper's 1106-programs x 5-inputs x 4-devices grid
(Section 4.5) — and stores the per-run throughputs for the analysis
modules.

The harness executes each *semantic* combination once per graph (via the
launcher's trace cache) and times it under every mapping combination, so a
full sweep is minutes, not hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .predictor import PredictionSummary
    from .tracestore import TraceStore

from ..graph.csr import CSRGraph
from ..graph.datasets import load_all
from ..machine.devices import CPUS, GPUS
from ..machine.specs import CPUSpec, GPUSpec
from ..runtime.budget import ResourceBudget
from ..runtime.errors import FailedRun
from ..runtime.launcher import Launcher, RunResult
from ..styles.axes import Algorithm, Model
from ..styles.combos import enumerate_specs
from ..styles.spec import StyleSpec

__all__ = [
    "PredictSettings",
    "SweepConfig",
    "StudyResults",
    "run_sweep",
    "sweep_block_runs",
]

DeviceSpec = Union[GPUSpec, CPUSpec]


@dataclass(frozen=True)
class PredictSettings:
    """How a predict-then-verify sweep prunes the variant grid.

    Per (model, device) cell, the learned predictor
    (:mod:`repro.bench.predictor`) ranks every variant by predicted time;
    only the ``top_k`` plus a seeded random audit sample of the rest are
    executed, and the remaining cells are back-filled with predictions
    (``RunResult.predicted = True``).  ``max_groups`` caps the *semantic*
    executions per (algorithm, graph) block — the quantity that actually
    costs kernel runs — by dropping the lowest-ranked selections;
    ``None`` leaves the selection uncapped.
    """

    top_k: int = 8
    #: Fraction of the pruned (non-top-k) variants per cell to execute
    #: anyway as a measured-vs-predicted audit sample.
    audit_frac: float = 0.02
    audit_seed: int = 0
    max_groups: Optional[int] = None
    #: Model artifact path override (None = ``$REPRO_PREDICTOR``, else
    #: the default artifact under the sweep cache).
    model_path: Optional[str] = None


@dataclass(frozen=True)
class SweepConfig:
    """What to sweep.  Defaults reproduce the paper's full grid at the
    reproduction's default input scale."""

    scale: str = "default"
    models: Tuple[Model, ...] = tuple(Model)
    algorithms: Tuple[Algorithm, ...] = tuple(Algorithm)
    gpu_names: Tuple[str, ...] = tuple(GPUS)
    cpu_names: Tuple[str, ...] = tuple(CPUS)
    graphs: Optional[Tuple[str, ...]] = None  #: None = all five inputs
    verify: bool = True
    #: Pre-launch footprint cap in bytes (None = environment default —
    #: see :class:`repro.runtime.budget.ResourceBudget`).
    max_footprint_bytes: Optional[int] = None
    #: Use the persistent trace store (:mod:`repro.bench.tracestore`):
    #: semantic executions are fetched from / saved to disk, so repeated
    #: or resumed sweeps re-time mapping variants with zero kernel
    #: executions.  ``$REPRO_TRACE_CACHE=0`` overrides to off; a path
    #: there overrides the directory.  Deliberately *not* part of the
    #: sweep cache key — results are bit-identical either way.
    trace_cache: bool = True
    #: Predict-then-verify pruning (:class:`PredictSettings`); ``None``
    #: (the default) sweeps exhaustively.  *Is* part of the sweep cache
    #: key — a pruned sweep's back-filled cells are estimates, not
    #: measurements.
    predict: Optional[PredictSettings] = None

    def devices_for(self, model: Model) -> List[DeviceSpec]:
        if model.is_gpu:
            return [GPUS[name] for name in self.gpu_names]
        return [CPUS[name] for name in self.cpu_names]

    def budget(self) -> Optional[ResourceBudget]:
        """The launcher budget for this sweep (None = env default)."""
        if self.max_footprint_bytes is None:
            return None
        return ResourceBudget(max_bytes=self.max_footprint_bytes)

    def trace_store(self) -> Union["TraceStore", bool]:
        """The resolved persistent trace store for this sweep.

        Returns ``False`` (not ``None``) when disabled: a launcher given
        ``None`` would re-resolve from the environment, silently undoing
        ``trace_cache=False``.
        """
        from .tracestore import resolve_trace_store

        return resolve_trace_store(enabled=self.trace_cache) or False


@dataclass
class StudyResults:
    """All runs of a sweep, with lookup indices for the analysis layer."""

    runs: List[RunResult] = field(default_factory=list)
    graphs: Dict[str, CSRGraph] = field(default_factory=dict)
    #: Failure manifest: grid cells (or whole blocks) that produced no run,
    #: with the error class and message behind each (see
    #: :class:`repro.runtime.errors.FailedRun`).
    failures: List[FailedRun] = field(default_factory=list)
    #: Kernels actually executed to produce these results (trace-store
    #: and in-memory hits excluded) — 0 for a fully warm trace store.
    #: Not persisted by ``save_results``: it describes one invocation,
    #: not the results.
    kernel_executions: int = 0
    #: Per-cell pruning report of a predict-then-verify sweep
    #: (:class:`repro.bench.predictor.PredictionSummary`); ``None`` for
    #: exhaustive sweeps.  Like ``kernel_executions``, not persisted.
    prediction: Optional["PredictionSummary"] = None
    _index: Dict[Tuple[StyleSpec, str, str], RunResult] = field(
        default_factory=dict, repr=False
    )
    #: Secondary indices: run positions per key, so `select` scans only the
    #: narrowest matching subset instead of every run (the analysis layer
    #: calls it thousands of times per figure).
    _by_algorithm: Dict[Algorithm, List[int]] = field(
        default_factory=dict, repr=False
    )
    _by_model: Dict[Model, List[int]] = field(default_factory=dict, repr=False)
    _by_device: Dict[str, List[int]] = field(default_factory=dict, repr=False)
    _by_graph: Dict[str, List[int]] = field(default_factory=dict, repr=False)

    def add(self, run: RunResult) -> None:
        position = len(self.runs)
        self.runs.append(run)
        self._index[(run.spec, run.device, run.graph)] = run
        self._by_algorithm.setdefault(run.spec.algorithm, []).append(position)
        self._by_model.setdefault(run.spec.model, []).append(position)
        self._by_device.setdefault(run.device, []).append(position)
        self._by_graph.setdefault(run.graph, []).append(position)

    def get(
        self, spec: StyleSpec, device: str, graph: str
    ) -> Optional[RunResult]:
        """The run of one (program, device, input) cell, if present."""
        return self._index.get((spec, device, graph))

    def select(
        self,
        *,
        algorithms: Optional[Iterable[Algorithm]] = None,
        models: Optional[Iterable[Model]] = None,
        devices: Optional[Iterable[str]] = None,
        graphs: Optional[Iterable[str]] = None,
    ) -> Iterator[RunResult]:
        """Iterate runs matching all provided filters (in run order)."""
        algorithms = None if algorithms is None else set(algorithms)
        models = None if models is None else set(models)
        devices = None if devices is None else set(devices)
        graphs = None if graphs is None else set(graphs)
        candidates = self._candidates(algorithms, models, devices, graphs)
        for run in candidates:
            if algorithms is not None and run.spec.algorithm not in algorithms:
                continue
            if models is not None and run.spec.model not in models:
                continue
            if devices is not None and run.device not in devices:
                continue
            if graphs is not None and run.graph not in graphs:
                continue
            yield run

    def _candidates(self, algorithms, models, devices, graphs) -> Iterable[RunResult]:
        """Runs from the narrowest secondary index covering a given filter
        (all runs when no filter is provided)."""
        best: Optional[List[List[int]]] = None
        best_size = -1
        for index, keys in (
            (self._by_algorithm, algorithms),
            (self._by_model, models),
            (self._by_device, devices),
            (self._by_graph, graphs),
        ):
            if keys is None:
                continue
            lists = [index.get(key, []) for key in keys]
            size = sum(len(lst) for lst in lists)
            if best is None or size < best_size:
                best, best_size = lists, size
        if best is None:
            return self.runs
        if len(best) == 1:
            positions: Iterable[int] = best[0]
        else:
            # Each position appears under exactly one key of a field, so
            # the union is a disjoint merge of sorted lists.
            positions = sorted(pos for lst in best for pos in lst)
        runs = self.runs
        return (runs[pos] for pos in positions)

    def add_failure(self, failure: FailedRun) -> None:
        self.failures.append(failure)

    @property
    def n_programs(self) -> int:
        """Distinct program variants that were run."""
        return len({run.spec for run in self.runs})

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    def failure_summary(self, *, limit: int = 20) -> str:
        """Human-readable failure manifest (for stderr after a sweep)."""
        if not self.failures:
            return "sweep failures: none"
        by_class: Dict[str, int] = {}
        for failure in self.failures:
            key = failure.error_class.value
            by_class[key] = by_class.get(key, 0) + 1
        counts = ", ".join(f"{k}: {v}" for k, v in sorted(by_class.items()))
        lines = [f"sweep failures: {len(self.failures)} ({counts})"]
        for failure in self.failures[:limit]:
            lines.append(f"  {failure.render()}")
        if len(self.failures) > limit:
            lines.append(f"  ... and {len(self.failures) - limit} more")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.runs)


def run_sweep(
    config: SweepConfig = SweepConfig(),
    *,
    launcher: Optional[Launcher] = None,
    graphs: Optional[Dict[str, CSRGraph]] = None,
) -> StudyResults:
    """Run the configured sweep and return all results.

    ``graphs`` may be supplied directly (e.g. custom inputs); otherwise the
    five dataset stand-ins are built at ``config.scale``.

    With ``config.predict`` set, the sweep is delegated to the
    predict-then-verify engine (:func:`repro.bench.predictor.run_sweep_predicted`):
    only the predicted-fastest variants plus an audit sample execute, the
    rest are back-filled with predictions.
    """
    if config.predict is not None:
        # Imported late: the predictor builds on this module.
        from .predictor import run_sweep_predicted

        return run_sweep_predicted(config, launcher=launcher, graphs=graphs)
    if graphs is None:
        graphs = load_all(config.scale)
        if config.graphs is not None:
            graphs = {name: graphs[name] for name in config.graphs}
    launcher = launcher or Launcher(
        verify=config.verify,
        budget=config.budget(),
        trace_store=config.trace_store(),
    )
    results = StudyResults(graphs=dict(graphs))
    # Iterate (algorithm, graph) in the outer loops so the semantic traces
    # of one block are shared across all three programming models and all
    # devices, then released — large worklist traces would otherwise
    # accumulate over the whole sweep.
    for algorithm in config.algorithms:
        per_model_specs = {
            model: enumerate_specs(algorithm, model) for model in config.models
        }
        for graph in graphs.values():
            for model, specs in per_model_specs.items():
                for run in sweep_block_runs(
                    launcher, specs, graph, config.devices_for(model),
                    failures=results.failures,
                ):
                    results.add(run)
            launcher.release(graph, algorithm)
    results.kernel_executions = launcher.kernel_executions
    return results


def sweep_block_runs(
    launcher: Launcher,
    specs: Sequence[StyleSpec],
    graph: CSRGraph,
    devices: Sequence[DeviceSpec],
    failures: Optional[List[FailedRun]] = None,
) -> Iterator[RunResult]:
    """Runs of one (specs, graph) block over its devices, batched.

    Each device times all mapping variants of each cached semantic trace in
    one pass; results are yielded in the study's canonical
    ``for spec: for device`` order.

    With ``failures`` (a list to append to), a variant whose verification
    or execution fails is recorded there as a :class:`FailedRun` per
    affected (spec, device) cell and skipped, instead of aborting the
    whole block.
    """
    on_error = None
    if failures is not None:
        def on_error(spec, device, exc):
            failures.append(
                FailedRun.from_exception(
                    exc,
                    algorithm=spec.algorithm.value,
                    graph=graph.name,
                    spec_label=spec.label(),
                    model=spec.model.value,
                    device=device.name,
                )
            )
    per_device = launcher.run_matrix(specs, graph, devices, on_error=on_error)
    for i in range(len(specs)):
        for batch in per_device:
            run = batch[i]
            if run is not None:
                yield run
