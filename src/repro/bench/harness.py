"""Full-study sweep harness.

Runs every enumerated program variant on every input graph and every
applicable device — the paper's 1106-programs x 5-inputs x 4-devices grid
(Section 4.5) — and stores the per-run throughputs for the analysis
modules.

The harness executes each *semantic* combination once per graph (via the
launcher's trace cache) and times it under every mapping combination, so a
full sweep is minutes, not hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..graph.csr import CSRGraph
from ..graph.datasets import load_all
from ..machine.devices import CPUS, GPUS
from ..machine.specs import CPUSpec, GPUSpec
from ..runtime.launcher import Launcher, RunResult
from ..styles.axes import Algorithm, Model
from ..styles.combos import enumerate_specs
from ..styles.spec import StyleSpec

__all__ = ["SweepConfig", "StudyResults", "run_sweep"]

DeviceSpec = Union[GPUSpec, CPUSpec]


@dataclass(frozen=True)
class SweepConfig:
    """What to sweep.  Defaults reproduce the paper's full grid at the
    reproduction's default input scale."""

    scale: str = "default"
    models: Tuple[Model, ...] = tuple(Model)
    algorithms: Tuple[Algorithm, ...] = tuple(Algorithm)
    gpu_names: Tuple[str, ...] = tuple(GPUS)
    cpu_names: Tuple[str, ...] = tuple(CPUS)
    graphs: Optional[Tuple[str, ...]] = None  #: None = all five inputs
    verify: bool = True

    def devices_for(self, model: Model) -> List[DeviceSpec]:
        if model.is_gpu:
            return [GPUS[name] for name in self.gpu_names]
        return [CPUS[name] for name in self.cpu_names]


@dataclass
class StudyResults:
    """All runs of a sweep, with lookup indices for the analysis layer."""

    runs: List[RunResult] = field(default_factory=list)
    graphs: Dict[str, CSRGraph] = field(default_factory=dict)
    _index: Dict[Tuple[StyleSpec, str, str], RunResult] = field(
        default_factory=dict, repr=False
    )

    def add(self, run: RunResult) -> None:
        self.runs.append(run)
        self._index[(run.spec, run.device, run.graph)] = run

    def get(
        self, spec: StyleSpec, device: str, graph: str
    ) -> Optional[RunResult]:
        """The run of one (program, device, input) cell, if present."""
        return self._index.get((spec, device, graph))

    def select(
        self,
        *,
        algorithms: Optional[Iterable[Algorithm]] = None,
        models: Optional[Iterable[Model]] = None,
        devices: Optional[Iterable[str]] = None,
        graphs: Optional[Iterable[str]] = None,
    ) -> Iterator[RunResult]:
        """Iterate runs matching all provided filters."""
        algorithms = None if algorithms is None else set(algorithms)
        models = None if models is None else set(models)
        devices = None if devices is None else set(devices)
        graphs = None if graphs is None else set(graphs)
        for run in self.runs:
            if algorithms is not None and run.spec.algorithm not in algorithms:
                continue
            if models is not None and run.spec.model not in models:
                continue
            if devices is not None and run.device not in devices:
                continue
            if graphs is not None and run.graph not in graphs:
                continue
            yield run

    @property
    def n_programs(self) -> int:
        """Distinct program variants that were run."""
        return len({run.spec for run in self.runs})

    def __len__(self) -> int:
        return len(self.runs)


def run_sweep(
    config: SweepConfig = SweepConfig(),
    *,
    launcher: Optional[Launcher] = None,
    graphs: Optional[Dict[str, CSRGraph]] = None,
) -> StudyResults:
    """Run the configured sweep and return all results.

    ``graphs`` may be supplied directly (e.g. custom inputs); otherwise the
    five dataset stand-ins are built at ``config.scale``.
    """
    if graphs is None:
        graphs = load_all(config.scale)
        if config.graphs is not None:
            graphs = {name: graphs[name] for name in config.graphs}
    launcher = launcher or Launcher(verify=config.verify)
    results = StudyResults(graphs=dict(graphs))
    # Iterate (algorithm, graph) in the outer loops so the semantic traces
    # of one block are shared across all three programming models and all
    # devices, then released — large worklist traces would otherwise
    # accumulate over the whole sweep.
    for algorithm in config.algorithms:
        per_model_specs = {
            model: enumerate_specs(algorithm, model) for model in config.models
        }
        for graph in graphs.values():
            for model, specs in per_model_specs.items():
                devices = config.devices_for(model)
                for spec in specs:
                    for device in devices:
                        results.add(launcher.run(spec, graph, device))
            launcher.release(graph, algorithm)
    return results
