"""Deterministic fault injection for the sweep supervisor (test-only).

The supervision paths in :mod:`repro.bench.parallel` — retry, timeout,
crash recovery, serial fallback, checkpoint quarantine — only matter when
something goes wrong, so CI must be able to *make* things go wrong on a
precise schedule.  Setting ``$REPRO_FAULTS`` to a JSON list of rules arms
this module; it is inert (and costs one env lookup) otherwise.

Each rule is an object with:

``action``
    ``"raise"``  — raise :class:`FaultInjected` at the start of the block;
    ``"hang"``   — sleep far past any reasonable block timeout;
    ``"kill"``   — ``os._exit`` the worker process (no-op when the block
    runs in the supervisor's own process, which is exactly what lets the
    serial fallback distinguish worker-environment faults from kernel
    bugs);
    ``"kill-attached"`` — ``os._exit`` the worker *after* it has attached
    to the shared-memory graph plane (same worker-only guard as
    ``kill``); exercises the crash-safety contract that a worker dying
    while mapped to shared segments never unlinks them;
    ``"verify"`` — make one variant's verification fail inside an
    otherwise healthy block;
    ``"corrupt-checkpoint"`` — truncate the block's checkpoint entry
    right after it is written;
    ``"kill-executor"`` — ``os._exit`` the *serving plane's* sweep
    executor worker mid-job (worker-only, like ``kill``); exercises the
    service's retry, circuit-breaker, and degraded-mode paths;
    ``"hang-request"`` — sleep inside the executor worker far past any
    request deadline, so the service's deadline enforcement has something
    real to kill;
    ``"reject-enqueue"`` — make the service's job-queue admission raise,
    exercising the explicit backpressure (429/503) path.

``algorithm`` / ``graph``
    Which (algorithm, graph) blocks the rule matches; either may be
    omitted to match all.

``attempts``
    Optional list of attempt numbers the rule fires on (default: every
    attempt).  Worker attempts count 0, 1, …; the in-process serial
    fallback runs as the next attempt number after the last worker retry.

``model`` / ``spec_index``
    For ``"verify"``: which model's enumeration (default: the block's
    first) and which variant index within it fails.

Workers set ``$REPRO_FAULTS_IN_WORKER`` so ``kill`` knows it is safe to
exit the process.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..runtime.verify import VerificationError

__all__ = [
    "FAULTS_ENV",
    "WORKER_ENV",
    "FaultInjected",
    "FaultRule",
    "active_rules",
    "inject_block_fault",
    "inject_attached_fault",
    "apply_verify_faults",
    "maybe_corrupt_checkpoint",
    "inject_executor_fault",
    "inject_enqueue_fault",
]

#: JSON fault plan; unset/empty means no injection.
FAULTS_ENV = "REPRO_FAULTS"

#: Set (to any value) in supervised worker processes.
WORKER_ENV = "REPRO_FAULTS_IN_WORKER"

#: How long a "hang" fault sleeps — effectively forever next to any
#: realistic ``--block-timeout``.
HANG_SECONDS = 3600.0


class FaultInjected(RuntimeError):
    """The error a ``raise`` fault produces (classified as ``kernel``)."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed entry of the ``$REPRO_FAULTS`` plan."""

    action: str
    algorithm: Optional[str] = None
    graph: Optional[str] = None
    attempts: Optional[Tuple[int, ...]] = None
    model: Optional[str] = None
    spec_index: int = 0

    def matches(self, algorithm: str, graph: str, attempt: int) -> bool:
        if self.algorithm is not None and self.algorithm != algorithm:
            return False
        if self.graph is not None and self.graph != graph:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


_ACTIONS = (
    "raise", "hang", "kill", "kill-attached", "verify", "corrupt-checkpoint",
    "kill-executor", "hang-request", "reject-enqueue",
)


def active_rules() -> List[FaultRule]:
    """The fault plan from the environment (re-read on every call, so
    freshly-forked workers and monkeypatching tests both see it)."""
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return []
    try:
        entries = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"${FAULTS_ENV} is not valid JSON: {exc}") from None
    rules = []
    for entry in entries:
        action = entry.get("action")
        if action not in _ACTIONS:
            raise ValueError(
                f"${FAULTS_ENV}: unknown action {action!r}; known: {_ACTIONS}"
            )
        attempts = entry.get("attempts")
        rules.append(
            FaultRule(
                action=action,
                algorithm=entry.get("algorithm"),
                graph=entry.get("graph"),
                attempts=None if attempts is None else tuple(attempts),
                model=entry.get("model"),
                spec_index=int(entry.get("spec_index", 0)),
            )
        )
    return rules


def inject_block_fault(algorithm: str, graph: str, attempt: int) -> None:
    """Fire any whole-block fault scheduled for this (block, attempt)."""
    for rule in active_rules():
        if rule.action not in ("raise", "hang", "kill"):
            continue
        if not rule.matches(algorithm, graph, attempt):
            continue
        if rule.action == "raise":
            raise FaultInjected(
                f"injected failure in {algorithm} x {graph} (attempt {attempt})"
            )
        if rule.action == "hang":
            time.sleep(HANG_SECONDS)
        elif rule.action == "kill" and os.environ.get(WORKER_ENV):
            os._exit(99)


def inject_attached_fault(algorithm: str, graph: str, attempt: int) -> None:
    """Kill the worker right after the graph is built/attached.

    Fires only for ``kill-attached`` rules and only inside supervised
    workers — dying while mapped to the shared-memory plane is precisely
    the crash the plane's publisher-owns-unlink contract must survive.
    """
    if not os.environ.get(WORKER_ENV):
        return
    for rule in active_rules():
        if rule.action != "kill-attached":
            continue
        if rule.matches(algorithm, graph, attempt):
            os._exit(98)


def inject_executor_fault(algorithm: str, graph: str, attempt: int) -> None:
    """Fire any service-executor fault scheduled for this (job, attempt).

    Called by the serving plane's sweep executor at the start of each
    algorithm's block.  ``hang-request`` sleeps past any realistic request
    deadline (the supervising service kills the worker and classifies the
    attempt as a timeout); ``kill-executor`` exits the worker process
    abruptly, and carries the same worker-only guard as ``kill`` so it can
    never take down the server itself.
    """
    for rule in active_rules():
        if rule.action not in ("kill-executor", "hang-request"):
            continue
        if not rule.matches(algorithm, graph, attempt):
            continue
        if rule.action == "hang-request":
            time.sleep(HANG_SECONDS)
        elif os.environ.get(WORKER_ENV):
            os._exit(97)


def inject_enqueue_fault(algorithm: str, graph: str, attempt: int = 0) -> None:
    """Raise :class:`FaultInjected` if a ``reject-enqueue`` rule matches.

    Fired in the *server* process at job-queue admission time; the service
    maps the injected rejection onto its normal queue-full backpressure
    response, which is exactly the claim the chaos suite checks.
    """
    for rule in active_rules():
        if rule.action != "reject-enqueue":
            continue
        if rule.matches(algorithm, graph, attempt):
            raise FaultInjected(
                f"injected enqueue rejection for {algorithm} x {graph}"
            )


def apply_verify_faults(launcher, block, attempt: int) -> None:
    """Wrap ``launcher.execute_semantic`` so the scheduled variant of this
    block fails verification.  No-op without a matching rule."""
    targets = set()
    for rule in active_rules():
        if rule.action != "verify":
            continue
        if not rule.matches(block.algorithm.value, block.graph_name, attempt):
            continue
        from ..styles.axes import Model
        from ..styles.combos import enumerate_specs

        model = Model(rule.model) if rule.model else block.models[0]
        specs = enumerate_specs(block.algorithm, model)
        targets.add(specs[rule.spec_index % len(specs)].semantic_key())
    if not targets:
        return
    original = launcher.execute_semantic

    def injected(spec, graph):
        if spec.semantic_key() in targets:
            raise VerificationError(
                f"injected verification failure for {spec.label()}"
            )
        return original(spec, graph)

    launcher.execute_semantic = injected


def maybe_corrupt_checkpoint(path, algorithm: str, graph: str) -> bool:
    """Truncate a just-written checkpoint entry if a rule schedules it."""
    for rule in active_rules():
        if rule.action != "corrupt-checkpoint":
            continue
        if not rule.matches(algorithm, graph, 0):
            continue
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
        return True
    return False
