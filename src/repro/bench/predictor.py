"""Learned style predictor and predict-then-verify sweep pruning.

The paper's method is brute force: every guideline comes from executing
all style variants per (kernel, graph, device) cell.  The trace store
holds something better than the paper had — ground-truth
``(graph properties, StyleSpec, device) -> seconds`` tuples accumulated
across every sweep ever run — and this module mines them into a model
that prunes the sweep itself:

* **Training-set miner** — :func:`mine_results` turns saved
  :class:`~repro.bench.harness.StudyResults` into feature rows;
  :func:`mine_trace_store` walks the persistent trace store, re-times
  every mapping variant of each stored semantic trace on every device
  (via :func:`repro.machine.matrix.time_matrix` — zero kernel
  executions), and emits the same rows.  Features come from
  :meth:`GraphProperties.features`, :func:`device_features`, and a
  one-hot encoding of the 13 style axes, plus explicit style x graph
  interaction products — the paper's central finding is that winners are
  *input-dependent*, and additive depth-1 stumps cannot express
  ``driver x diameter`` without them.

* **Hand-rolled regressor** — :class:`BoostedStumps`, gradient-boosted
  depth-1 regression trees on log-seconds.  No sklearn; deterministic
  (quantile-binned splits, first-index tie-breaks); (de)serializes to
  plain JSON.

* **Versioned artifact** — :class:`StylePredictor` persists under the
  sweep cache (``<sweep-cache>/predictor/model-v1.json``) with the
  store discipline used everywhere else: checksummed header line,
  tmp + rename writes, quarantine-on-corruption.  ``$REPRO_PREDICTOR``
  overrides the path (``0``/empty disables prediction outright).

* **Predict-then-verify sweeps** — :func:`run_sweep_predicted` ranks
  each cell's variants by predicted time, executes only the top-k plus
  a seeded audit sample, back-fills the rest with predictions
  (``RunResult.predicted = True``), and reports per-cell regret bounds
  and audit error in :class:`PredictionSummary` (at-risk cells also land
  in the failure manifest).  A missing/corrupt/mismatched artifact
  degrades to the exhaustive sweep with a manifest entry — pruning is an
  optimization, never a correctness dependency.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
import os
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.properties import GraphProperties, analyze
from ..machine.devices import CPUS, DEVICES, GPUS
from ..machine.features import DEVICE_FEATURE_NAMES, device_features
from ..machine.matrix import time_matrix
from ..machine.specs import CPUSpec, GPUSpec
from ..runtime.errors import ErrorClass, FailedRun, error_digest
from ..runtime.launcher import Launcher, RunResult
from ..runtime.locking import store_lock
from ..styles import axes
from ..styles.axes import Algorithm, Model
from ..styles.combos import enumerate_specs
from ..styles.spec import SemanticKey, StyleSpec
from .harness import PredictSettings, StudyResults, SweepConfig, sweep_block_runs
from .storage import default_cache_dir
from .tracestore import TraceStore, kernel_code_fingerprint

__all__ = [
    "PREDICTOR_ENV",
    "ARTIFACT_VERSION",
    "FEATURE_SCHEMA_VERSION",
    "feature_names",
    "TrainingSet",
    "mine_results",
    "mine_trace_store",
    "export_training_set",
    "BoostedStumps",
    "StylePredictor",
    "PredictorArtifactError",
    "default_predictor_path",
    "resolve_predictor",
    "CellPrediction",
    "PredictionSummary",
    "run_sweep_predicted",
]

DeviceSpec = Union[GPUSpec, CPUSpec]

#: Model artifact path override / kill switch (``0``/empty disables).
PREDICTOR_ENV = "REPRO_PREDICTOR"

#: Bumped when the artifact payload layout changes incompatibly.
ARTIFACT_VERSION = 1

#: Bumped when the feature layout changes; a loaded artifact must match
#: both this and the exact feature-name list.
FEATURE_SCHEMA_VERSION = 1

_MAGIC = b"repro-predictor-v1"


# ----------------------------------------------------------------------
# Feature schema
# ----------------------------------------------------------------------
#: The 13 style axes in StyleSpec field order.
_STYLE_AXES: Tuple[Tuple[str, type], ...] = (
    ("iteration", axes.Iteration),
    ("driver", axes.Driver),
    ("dup", axes.Dup),
    ("flow", axes.Flow),
    ("update", axes.Update),
    ("determinism", axes.Determinism),
    ("persistence", axes.Persistence),
    ("granularity", axes.Granularity),
    ("atomic_flavor", axes.AtomicFlavor),
    ("gpu_reduction", axes.GpuReduction),
    ("cpu_reduction", axes.CpuReduction),
    ("omp_schedule", axes.OmpSchedule),
    ("cpp_schedule", axes.CppSchedule),
)

_GRAPH_FEATURES: Tuple[str, ...] = (
    "g_log_vertices",
    "g_log_edges",
    "g_avg_degree",
    "g_log_max_degree",
    "g_pct_deg_ge_32",
    "g_pct_deg_ge_512",
    "g_log_diameter",
)

#: Scalars each style indicator is crossed with.  The graph four carry
#: the paper's input-dependence (diameter drives push/pull and driver
#: choices, degree skew drives granularity, size drives everything);
#: log-parallelism separates the device families within a model.
_INTERACTION_SCALARS: Tuple[str, ...] = (
    "g_log_diameter",
    "g_pct_deg_ge_32",
    "g_avg_degree",
    "g_log_edges",
    "dev_log_parallelism",
)


def _style_onehot_names() -> Tuple[str, ...]:
    return tuple(
        f"s_{name}_{member.value}"
        for name, enum_cls in _STYLE_AXES
        for member in enum_cls
    )


class _Schema:
    """Deterministic feature layout shared by miner, model, and artifact."""

    def __init__(self) -> None:
        self.graph_names = _GRAPH_FEATURES
        self.device_names = DEVICE_FEATURE_NAMES + ("dev_log_parallelism",)
        self.algo_names = tuple(f"alg_{a.value}" for a in Algorithm)
        self.model_names = tuple(f"model_{m.value}" for m in Model)
        self.style_names = _style_onehot_names()
        self.interaction_names = tuple(
            f"x_{s}__{scalar}"
            for s in self.style_names
            for scalar in _INTERACTION_SCALARS
        )
        self.names: Tuple[str, ...] = (
            self.graph_names
            + self.device_names
            + self.algo_names
            + self.model_names
            + self.style_names
            + self.interaction_names
        )
        # Segment offsets.
        off = 0
        self.o_graph = off
        off += len(self.graph_names)
        self.o_device = off
        off += len(self.device_names)
        self.o_algo = off
        off += len(self.algo_names)
        self.o_model = off
        off += len(self.model_names)
        self.o_style = off
        off += len(self.style_names)
        self.o_inter = off
        self.algo_index = {a: i for i, a in enumerate(Algorithm)}
        self.model_index = {m: i for i, m in enumerate(Model)}
        self._style_memo: Dict[Tuple, np.ndarray] = {}

    def style_vector(self, spec: StyleSpec) -> np.ndarray:
        key = tuple(getattr(spec, name) for name, _ in _STYLE_AXES)
        vec = self._style_memo.get(key)
        if vec is None:
            vec = np.zeros(len(self.style_names))
            pos = 0
            for (name, enum_cls), value in zip(_STYLE_AXES, key):
                if value is not None:
                    members = list(enum_cls)
                    vec[pos + members.index(value)] = 1.0
                pos += len(list(enum_cls))
            self._style_memo[key] = vec
        return vec

    def rows(
        self,
        specs: Sequence[StyleSpec],
        gfeat: Mapping[str, float],
        dfeat: Mapping[str, float],
    ) -> np.ndarray:
        """Feature matrix of ``specs`` on one (graph, device) context."""
        dvals = dict(dfeat)
        dvals["dev_log_parallelism"] = math.log1p(dvals.get("dev_parallelism", 0.0))
        both = {**gfeat, **dvals}
        g = np.array([gfeat[k] for k in self.graph_names])
        d = np.array([dvals[k] for k in self.device_names])
        scalars = np.array([both[k] for k in _INTERACTION_SCALARS])
        X = np.zeros((len(specs), len(self.names)))
        X[:, self.o_graph:self.o_graph + g.size] = g
        X[:, self.o_device:self.o_device + d.size] = d
        for i, spec in enumerate(specs):
            X[i, self.o_algo + self.algo_index[spec.algorithm]] = 1.0
            X[i, self.o_model + self.model_index[spec.model]] = 1.0
            sv = self.style_vector(spec)
            X[i, self.o_style:self.o_style + sv.size] = sv
            X[i, self.o_inter:] = np.outer(sv, scalars).ravel()
        return X


_schema: Optional[_Schema] = None


def _get_schema() -> _Schema:
    global _schema
    if _schema is None:
        _schema = _Schema()
    return _schema


def feature_names() -> Tuple[str, ...]:
    """The model's feature layout (order is part of the artifact schema)."""
    return _get_schema().names


# ----------------------------------------------------------------------
# Training-set mining
# ----------------------------------------------------------------------
@dataclass
class TrainingSet:
    """Mined feature rows: ``X`` row ``i`` describes ``meta[i]``."""

    X: np.ndarray  #: (n, F) feature matrix
    y_log_seconds: np.ndarray  #: (n,) regression target
    meta: List[Dict[str, object]] = field(default_factory=list)
    #: Rows *not* mined, by reason (stale entry, missing properties, ...).
    skipped: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "TrainingSet":
        return cls(
            X=np.zeros((0, len(feature_names()))),
            y_log_seconds=np.zeros(0),
        )

    def extend(self, other: "TrainingSet") -> "TrainingSet":
        self.X = np.vstack([self.X, other.X])
        self.y_log_seconds = np.concatenate(
            [self.y_log_seconds, other.y_log_seconds]
        )
        self.meta.extend(other.meta)
        for reason, count in other.skipped.items():
            self.skipped[reason] = self.skipped.get(reason, 0) + count
        return self

    def _skip(self, reason: str, count: int = 1) -> None:
        self.skipped[reason] = self.skipped.get(reason, 0) + count

    def __len__(self) -> int:
        return len(self.meta)


def _append_rows(
    ts: TrainingSet,
    specs: Sequence[StyleSpec],
    seconds: np.ndarray,
    gfeat: Mapping[str, float],
    device: DeviceSpec,
    graph_name: str,
    source: str,
) -> None:
    schema = _get_schema()
    X = schema.rows(specs, gfeat, device_features(device))
    ts.X = np.vstack([ts.X, X])
    ts.y_log_seconds = np.concatenate(
        [ts.y_log_seconds, np.log(np.asarray(seconds, dtype=np.float64))]
    )
    for spec, secs in zip(specs, seconds):
        ts.meta.append(
            {
                "algorithm": spec.algorithm.value,
                "model": spec.model.value,
                "graph": graph_name,
                "device": device.name,
                "style": spec.label(),
                "seconds": float(secs),
                "source": source,
            }
        )


def mine_results(
    results: StudyResults,
    *,
    properties: Optional[Mapping[str, GraphProperties]] = None,
) -> TrainingSet:
    """Feature rows from a sweep's measured runs.

    Predicted (back-filled) runs are never mined — the model must not
    train on its own output.  Runs whose graph is absent from
    ``results.graphs`` (and from ``properties``) are skipped: features
    need the graph's properties.
    """
    ts = TrainingSet.empty()
    props: Dict[str, GraphProperties] = dict(properties or {})
    gfeats: Dict[str, Mapping[str, float]] = {}
    grouped: Dict[Tuple[str, str], List[RunResult]] = {}
    for run in results.runs:
        if getattr(run, "predicted", False):
            ts._skip("predicted-run")
            continue
        if run.graph not in props:
            graph = results.graphs.get(run.graph)
            if graph is None:
                ts._skip("no-graph")
                continue
            props[run.graph] = analyze(graph)
        if run.device not in DEVICES:
            ts._skip("unknown-device")
            continue
        grouped.setdefault((run.graph, run.device), []).append(run)
    for (graph_name, device_name), runs in grouped.items():
        gfeat = gfeats.get(graph_name)
        if gfeat is None:
            gfeat = props[graph_name].features()
            gfeats[graph_name] = gfeat
        _append_rows(
            ts,
            [run.spec for run in runs],
            np.array([run.seconds for run in runs]),
            gfeat,
            DEVICES[device_name],
            graph_name,
            "results",
        )
    return ts


def _semantic_from_payload(payload: Mapping[str, Optional[str]]) -> SemanticKey:
    def opt(enum_cls, value):
        return None if value is None else enum_cls(value)

    return SemanticKey(
        algorithm=Algorithm(payload["algorithm"]),
        iteration=axes.Iteration(payload["iteration"]),
        driver=axes.Driver(payload["driver"]),
        dup=opt(axes.Dup, payload["dup"]),
        flow=opt(axes.Flow, payload["flow"]),
        update=opt(axes.Update, payload["update"]),
        determinism=axes.Determinism(payload["determinism"]),
    )


def mine_trace_store(
    store: TraceStore,
    *,
    require_verified: bool = True,
) -> TrainingSet:
    """Feature rows from every usable entry of the persistent trace store.

    Each stored semantic trace is re-timed for *all* of its mapping
    variants on *all* devices via :func:`time_matrix` — zero kernel
    executions, so one stored trace yields hundreds of ground-truth rows
    for free.  Skipped (and counted in ``TrainingSet.skipped``): stale
    entries (kernel code changed), unverified ones (unless allowed), and
    entries from before graph properties were stored in the metadata.
    """
    ts = TrainingSet.empty()
    current = kernel_code_fingerprint()
    for meta, result in store.iter_entries():
        if meta["key"].get("kernel_code") != current:
            ts._skip("stale")
            continue
        if require_verified and not meta.get("verified", False):
            ts._skip("unverified")
            continue
        props_payload = meta.get("graph_properties")
        if not props_payload:
            ts._skip("no-graph-properties")
            continue
        try:
            semantic = _semantic_from_payload(meta["key"]["semantic"])
            gfeat = GraphProperties.from_dict(props_payload).features()
        except (KeyError, TypeError, ValueError):
            ts._skip("bad-metadata")
            continue
        graph_name = meta.get("graph_name", "?")
        for model in Model:
            specs = [
                spec
                for spec in enumerate_specs(semantic.algorithm, model)
                if spec.semantic_key() == semantic
            ]
            if not specs:
                continue
            devices = list(GPUS.values()) if model.is_gpu else list(CPUS.values())
            seconds = time_matrix(result.trace, specs, devices)
            for j, device in enumerate(devices):
                _append_rows(
                    ts, specs, seconds[:, j], gfeat, device,
                    graph_name, "trace-store",
                )
    return ts


_META_COLUMNS = (
    "algorithm", "model", "graph", "device", "style", "source", "seconds",
)


def export_training_set(
    ts: TrainingSet,
    out,
    *,
    fmt: str = "csv",
    include_features: bool = True,
) -> int:
    """Dump a mined training set to a text stream as CSV or JSONL.

    Returns the number of rows written.  ``include_features=False``
    writes only the identifying columns plus the target — a compact view
    for eyeballing; the full dump is the auditable model input.
    """
    names = feature_names() if include_features else ()
    if fmt == "csv":
        writer = csv.writer(out)
        writer.writerow(list(_META_COLUMNS) + list(names))
        for i, meta in enumerate(ts.meta):
            row = [meta[c] for c in _META_COLUMNS]
            if names:
                row.extend(repr(v) for v in ts.X[i])
            writer.writerow(row)
    elif fmt == "jsonl":
        for i, meta in enumerate(ts.meta):
            record = {c: meta[c] for c in _META_COLUMNS}
            if names:
                record["features"] = dict(zip(names, ts.X[i].tolist()))
            out.write(json.dumps(record, sort_keys=True) + "\n")
    else:
        raise ValueError(f"unknown export format: {fmt!r}")
    return len(ts.meta)


# ----------------------------------------------------------------------
# Hand-rolled gradient-boosted stumps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Stump:
    feature: int
    threshold: float  #: x <= threshold goes left
    left: float
    right: float


class BoostedStumps:
    """Least-squares gradient boosting with depth-1 trees.

    Deterministic by construction: split candidates are quantile
    thresholds fixed before the first round, and all ties break on the
    first (lowest feature, lowest threshold) candidate.  ``seed`` is
    recorded for provenance (the fit itself uses no randomness).
    """

    def __init__(
        self,
        *,
        rounds: int = 400,
        learning_rate: float = 0.1,
        max_bins: int = 32,
        seed: int = 0,
    ):
        self.rounds = rounds
        self.learning_rate = learning_rate
        self.max_bins = max_bins
        self.seed = seed
        self.base_: float = 0.0
        self.stumps_: List[_Stump] = []

    # -- fitting -------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BoostedStumps":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n, n_features = X.shape
        if n == 0:
            raise ValueError("cannot fit on an empty training set")
        self.base_ = float(y.mean())
        self.stumps_ = []
        # Quantile-binned split candidates, fixed for the whole fit.
        thresholds: List[np.ndarray] = []
        binned = np.zeros((n, n_features), dtype=np.int32)
        cum_counts: List[Optional[np.ndarray]] = []
        for f in range(n_features):
            col = X[:, f]
            uniq = np.unique(col)
            if uniq.size <= 1:
                th = uniq[:0]
            elif uniq.size <= self.max_bins:
                th = uniq[:-1]  # split after every distinct value
            else:
                qs = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
                th = np.unique(np.quantile(col, qs))
            thresholds.append(th)
            if th.size == 0:
                cum_counts.append(None)
                continue
            binned[:, f] = np.searchsorted(th, col, side="left")
            counts = np.bincount(binned[:, f], minlength=th.size + 1)
            cum_counts.append(np.cumsum(counts)[:-1].astype(np.float64))
        pred = np.full(n, self.base_)
        for _ in range(self.rounds):
            resid = y - pred
            total = resid.sum()
            base_gain = total * total / n
            best_gain = base_gain + 1e-12
            best: Optional[Tuple[int, int]] = None
            for f in range(n_features):
                nl = cum_counts[f]
                if nl is None:
                    continue
                sums = np.bincount(
                    binned[:, f], weights=resid, minlength=thresholds[f].size + 1
                )
                sl = np.cumsum(sums)[:-1]
                nr = n - nl
                valid = (nl > 0) & (nr > 0)
                if not valid.any():
                    continue
                sr = total - sl
                with np.errstate(divide="ignore", invalid="ignore"):
                    gain = sl * sl / nl + sr * sr / nr
                gain = np.where(valid, gain, -np.inf)
                cut = int(np.argmax(gain))
                if gain[cut] > best_gain:
                    best_gain = float(gain[cut])
                    best = (f, cut)
            if best is None:
                break  # no split reduces the residual variance
            f, cut = best
            left_mask = binned[:, f] <= cut
            lr = self.learning_rate
            left = lr * float(resid[left_mask].mean())
            right = lr * float(resid[~left_mask].mean())
            self.stumps_.append(
                _Stump(f, float(thresholds[f][cut]), left, right)
            )
            pred = pred + np.where(left_mask, left, right)
        return self

    # -- inference -----------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        out = np.full(X.shape[0], self.base_)
        for stump in self.stumps_:
            out = out + np.where(
                X[:, stump.feature] <= stump.threshold,
                stump.left,
                stump.right,
            )
        return out

    # -- (de)serialization ---------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        return {
            "rounds": self.rounds,
            "learning_rate": self.learning_rate,
            "max_bins": self.max_bins,
            "seed": self.seed,
            "base": self.base_,
            "stumps": [
                [s.feature, s.threshold, s.left, s.right]
                for s in self.stumps_
            ],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "BoostedStumps":
        model = cls(
            rounds=int(payload["rounds"]),
            learning_rate=float(payload["learning_rate"]),
            max_bins=int(payload["max_bins"]),
            seed=int(payload["seed"]),
        )
        model.base_ = float(payload["base"])
        model.stumps_ = [
            _Stump(int(f), float(t), float(lo), float(hi))
            for f, t, lo, hi in payload["stumps"]
        ]
        return model


# ----------------------------------------------------------------------
# The persisted predictor
# ----------------------------------------------------------------------
class PredictorArtifactError(ValueError):
    """A model artifact is unreadable, corrupt, or from another schema."""


def default_predictor_path() -> Path:
    """``<sweep cache>/predictor/model-v1.json``."""
    return default_cache_dir() / "predictor" / f"model-v{ARTIFACT_VERSION}.json"


class StylePredictor:
    """A trained model plus the coverage metadata pruning decisions need."""

    def __init__(
        self,
        model: BoostedStumps,
        *,
        cells: Iterable[Tuple[str, str]],
        training: Optional[Dict[str, object]] = None,
    ):
        self.model = model
        #: (algorithm value, device name) pairs seen during training —
        #: prediction outside them is extrapolation, and the sweep/serve
        #: planes refuse to prune there.
        self.cells: Set[Tuple[str, str]] = set(cells)
        self.training: Dict[str, object] = dict(training or {})

    # -- training ------------------------------------------------------
    @classmethod
    def train(
        cls,
        ts: TrainingSet,
        *,
        seed: int = 0,
        rounds: int = 400,
        learning_rate: float = 0.1,
        max_bins: int = 32,
    ) -> "StylePredictor":
        if len(ts) == 0:
            raise ValueError("training set is empty — nothing to fit")
        model = BoostedStumps(
            rounds=rounds,
            learning_rate=learning_rate,
            max_bins=max_bins,
            seed=seed,
        ).fit(ts.X, ts.y_log_seconds)
        fit_err = np.abs(model.predict(ts.X) - ts.y_log_seconds)
        training = {
            "rows": len(ts),
            "graphs": sorted({m["graph"] for m in ts.meta}),
            "algorithms": sorted({m["algorithm"] for m in ts.meta}),
            "devices": sorted({m["device"] for m in ts.meta}),
            "sources": sorted({m["source"] for m in ts.meta}),
            "skipped": dict(sorted(ts.skipped.items())),
            "mae_log_seconds": float(fit_err.mean()),
            "p95_log_seconds": float(np.quantile(fit_err, 0.95)),
            "stumps": len(model.stumps_),
        }
        cells = {(m["algorithm"], m["device"]) for m in ts.meta}
        return cls(model, cells=cells, training=training)

    def covers(self, algorithm: Algorithm, device_name: str) -> bool:
        return (algorithm.value, device_name) in self.cells

    # -- inference -----------------------------------------------------
    def predict_seconds(
        self,
        specs: Sequence[StyleSpec],
        gfeat: Mapping[str, float],
        devices: Sequence[DeviceSpec],
    ) -> np.ndarray:
        """Predicted seconds, ``(len(specs), len(devices))``.

        NaN where a spec's programming model cannot run on the device
        (mirroring :func:`time_matrix`).
        """
        schema = _get_schema()
        out = np.full((len(specs), len(devices)), np.nan)
        for j, device in enumerate(devices):
            gpu_device = isinstance(device, GPUSpec)
            indices = [
                i for i, spec in enumerate(specs)
                if spec.model.is_gpu == gpu_device
            ]
            if not indices:
                continue
            X = schema.rows(
                [specs[i] for i in indices], gfeat, device_features(device)
            )
            out[indices, j] = np.exp(self.model.predict(X))
        return out

    def best_style(
        self,
        algorithm: Algorithm,
        model: Model,
        gfeat: Mapping[str, float],
        device: DeviceSpec,
    ) -> Tuple[StyleSpec, float]:
        """The predicted-fastest variant of one (algorithm, model) cell."""
        specs = enumerate_specs(algorithm, model)
        seconds = self.predict_seconds(specs, gfeat, [device])[:, 0]
        i = int(np.argmin(seconds))
        return specs[i], float(seconds[i])

    # -- persistence ---------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        return {
            "version": ARTIFACT_VERSION,
            "schema_version": FEATURE_SCHEMA_VERSION,
            "feature_names": list(feature_names()),
            "cells": sorted(list(c) for c in self.cells),
            "training": self.training,
            "model": self.model.to_payload(),
        }

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Atomically persist the artifact (checksummed, byte-deterministic)."""
        path = Path(path) if path is not None else default_predictor_path()
        body = json.dumps(self.to_payload(), sort_keys=True).encode()
        checksum = hashlib.sha256(body).hexdigest().encode("ascii")
        path.parent.mkdir(parents=True, exist_ok=True)
        with store_lock(path.parent):
            tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
            tmp.write_bytes(_MAGIC + b" " + checksum + b"\n" + body)
            os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StylePredictor":
        """Load an artifact; :class:`PredictorArtifactError` on any defect."""
        path = Path(path)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise PredictorArtifactError(f"cannot read {path}: {exc}") from None
        header, sep, body = blob.partition(b"\n")
        if not sep or not header.startswith(_MAGIC + b" "):
            raise PredictorArtifactError(f"{path}: missing predictor header")
        checksum = header.split(b" ", 1)[1]
        if hashlib.sha256(body).hexdigest().encode("ascii") != checksum:
            raise PredictorArtifactError(
                f"{path}: checksum mismatch (truncated or corrupt artifact)"
            )
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise PredictorArtifactError(f"{path}: bad JSON body ({exc})") from None
        if payload.get("version") != ARTIFACT_VERSION:
            raise PredictorArtifactError(
                f"{path}: artifact version {payload.get('version')!r} != "
                f"{ARTIFACT_VERSION}"
            )
        if (
            payload.get("schema_version") != FEATURE_SCHEMA_VERSION
            or payload.get("feature_names") != list(feature_names())
        ):
            raise PredictorArtifactError(
                f"{path}: feature schema does not match this code"
            )
        try:
            model = BoostedStumps.from_payload(payload["model"])
            cells = {(a, d) for a, d in payload["cells"]}
        except (KeyError, TypeError, ValueError) as exc:
            raise PredictorArtifactError(
                f"{path}: malformed payload ({exc})"
            ) from None
        return cls(model, cells=cells, training=payload.get("training"))


def resolve_predictor(
    path: Optional[Union[str, Path]] = None,
) -> Tuple[Optional["StylePredictor"], Optional[str]]:
    """The predictor an execution path should use, or ``(None, why)``.

    Resolution mirrors the trace store: ``$REPRO_PREDICTOR=0``/empty is
    a hard kill switch; a path there overrides; ``path`` (an explicit
    caller override) wins over both defaults.  A corrupt or mismatched
    artifact is quarantined (moved to a ``quarantine/`` sibling with a
    stderr warning) and reads as unavailable — callers degrade to the
    exhaustive sweep.
    """
    env = os.environ.get(PREDICTOR_ENV)
    if env is not None and env.strip() in ("", "0"):
        return None, "disabled by $REPRO_PREDICTOR"
    if path is not None:
        resolved = Path(path)
    elif env:
        resolved = Path(env)
    else:
        resolved = default_predictor_path()
    if not resolved.exists():
        return None, f"no model artifact at {resolved}"
    try:
        return StylePredictor.load(resolved), None
    except PredictorArtifactError as exc:
        _quarantine_artifact(resolved, exc)
        return None, str(exc)


def _quarantine_artifact(path: Path, reason: Exception) -> None:
    quarantine = path.parent / "quarantine"
    dest = quarantine / path.name
    try:
        with store_lock(path.parent):
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
    except OSError:
        return
    print(
        f"warning: bad predictor artifact quarantined to {dest}: {reason}",
        file=sys.stderr,
    )


# ----------------------------------------------------------------------
# Predict-then-verify sweeps
# ----------------------------------------------------------------------
@dataclass
class CellPrediction:
    """Pruning outcome of one (algorithm, model, graph, device) cell."""

    algorithm: str
    model: str
    graph: str
    device: str
    n_variants: int
    n_measured: int
    n_predicted: int
    n_audited: int
    winner_style: Optional[str] = None
    winner_seconds: Optional[float] = None
    #: Smallest *predicted* (calibrated) time among the cell's unmeasured
    #: variants — when it undercuts the measured winner the model itself
    #: says the pruning may have cost the crown (``at_risk``).
    predicted_floor_unmeasured: Optional[float] = None
    at_risk: bool = False
    audit_max_rel_error: Optional[float] = None
    #: Multiplier applied to this cell's raw predictions before
    #: back-filling: the geometric median of measured/predicted over the
    #: cell's executed variants.  Prediction supplies the *ranking*;
    #: the verified measurements re-anchor the absolute scale (a model
    #: trained at tiny scale is asked about much larger inputs).
    calibration: float = 1.0


@dataclass
class PredictionSummary:
    """What a predict-then-verify sweep did and how sure it is."""

    settings: PredictSettings
    cells: List[CellPrediction] = field(default_factory=list)
    #: Distinct semantic groups in / executed by the sweep — the ratio is
    #: the kernel-execution saving on a cold trace store.
    groups_total: int = 0
    groups_executed: int = 0
    model_info: Dict[str, object] = field(default_factory=dict)

    @property
    def n_measured(self) -> int:
        return sum(cell.n_measured for cell in self.cells)

    @property
    def n_predicted(self) -> int:
        return sum(cell.n_predicted for cell in self.cells)

    @property
    def at_risk_cells(self) -> List[CellPrediction]:
        return [cell for cell in self.cells if cell.at_risk]

    def audit_max_rel_error(self) -> Optional[float]:
        errors = [
            cell.audit_max_rel_error
            for cell in self.cells
            if cell.audit_max_rel_error is not None
        ]
        return max(errors) if errors else None

    def render(self) -> str:
        """Human-readable pruning report (for stderr after a sweep)."""
        lines = [
            "predict-then-verify: "
            f"{self.groups_executed}/{self.groups_total} semantic groups "
            f"executed, {self.n_measured} variants measured, "
            f"{self.n_predicted} back-filled with predictions"
        ]
        audit = self.audit_max_rel_error()
        if audit is not None:
            lines.append(f"  audit max relative error: {audit:.1%}")
        risky = self.at_risk_cells
        if risky:
            lines.append(
                f"  at-risk cells (predicted floor under measured winner): "
                f"{len(risky)}"
            )
            for cell in risky[:10]:
                lines.append(
                    f"    {cell.algorithm}/{cell.model} x {cell.graph} "
                    f"on {cell.device}"
                )
        else:
            lines.append("  at-risk cells: none")
        return "\n".join(lines)


def _props_features(graph: CSRGraph, memo: Dict[str, Mapping[str, float]]):
    feats = memo.get(graph.fingerprint())
    if feats is None:
        feats = analyze(graph).features()
        memo[graph.fingerprint()] = feats
    return feats


def _cell_audit_rng(
    settings: PredictSettings,
    algorithm: Algorithm,
    graph_name: str,
    model: Model,
    device_name: str,
) -> np.random.Generator:
    digest = hashlib.sha256(
        f"{settings.audit_seed}|{algorithm.value}|{graph_name}|"
        f"{model.value}|{device_name}".encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def run_sweep_predicted(
    config: SweepConfig,
    *,
    launcher: Optional[Launcher] = None,
    graphs: Optional[Dict[str, CSRGraph]] = None,
    predictor: Optional[StylePredictor] = None,
) -> StudyResults:
    """Run ``config`` as a predict-then-verify sweep.

    Per cell, the predictor ranks all variants; the top-k and a seeded
    audit sample execute for real (sharing semantic traces across models
    and devices exactly like the exhaustive path), everything else is
    back-filled as a ``predicted`` run.  Cells the model never trained on
    — and the whole sweep when no usable artifact exists — fall back to
    exhaustive execution, with a manifest entry explaining why.
    """
    settings = config.predict
    if settings is None:
        raise ValueError("run_sweep_predicted needs SweepConfig.predict set")
    if graphs is None:
        from ..graph.datasets import load_all

        graphs = load_all(config.scale)
        if config.graphs is not None:
            graphs = {name: graphs[name] for name in config.graphs}
    if predictor is None:
        predictor, reason = resolve_predictor(settings.model_path)
        if predictor is None:
            # No usable model: degrade to the exhaustive sweep, visibly.
            from .harness import run_sweep

            message = f"predictor unavailable ({reason}); ran exhaustively"
            results = run_sweep(
                replace(config, predict=None), launcher=launcher, graphs=graphs
            )
            results.failures.insert(
                0,
                FailedRun(
                    algorithm="*",
                    graph="*",
                    error_class=ErrorClass.CHECKPOINT,
                    message=message,
                    digest=error_digest(ErrorClass.CHECKPOINT, message),
                    stage="predictor",
                ),
            )
            summary = PredictionSummary(settings=settings)
            summary.model_info = {"available": False, "reason": reason}
            results.prediction = summary
            return results
    launcher = launcher or Launcher(
        verify=config.verify,
        budget=config.budget(),
        trace_store=config.trace_store(),
    )
    results = StudyResults(graphs=dict(graphs))
    summary = PredictionSummary(settings=settings)
    summary.model_info = {"available": True, **predictor.training}
    feature_memo: Dict[str, Mapping[str, float]] = {}
    for algorithm in config.algorithms:
        per_model_specs = {
            model: enumerate_specs(algorithm, model) for model in config.models
        }
        for graph in graphs.values():
            gfeat = _props_features(graph, feature_memo)
            for run in _predicted_block(
                launcher, algorithm, per_model_specs, graph, gfeat,
                config, settings, predictor, results.failures, summary,
            ):
                results.add(run)
            launcher.release(graph, algorithm)
    results.kernel_executions = launcher.kernel_executions
    results.prediction = summary
    return results


def _predicted_block(
    launcher: Launcher,
    algorithm: Algorithm,
    per_model_specs: Dict[Model, List[StyleSpec]],
    graph: CSRGraph,
    gfeat: Mapping[str, float],
    config: SweepConfig,
    settings: PredictSettings,
    predictor: StylePredictor,
    failures: List[FailedRun],
    summary: PredictionSummary,
):
    """Plan, execute, back-fill, and account one (algorithm, graph) block."""
    # -- plan: per-cell variant selection ------------------------------
    plans = []  # (model, devices, specs, P, per-device (chosen, audit))
    for model, specs in per_model_specs.items():
        devices = config.devices_for(model)
        pred_matrix = predictor.predict_seconds(specs, gfeat, devices)
        cells = []
        for j, device in enumerate(devices):
            if not predictor.covers(algorithm, device.name):
                # Untrained cell: no pruning, execute everything.
                cells.append((np.arange(len(specs)), np.zeros(0, dtype=int)))
                continue
            order = np.argsort(pred_matrix[:, j], kind="stable")
            chosen = order[: max(settings.top_k, 1)]
            pool = order[max(settings.top_k, 1):]
            n_audit = 0
            if settings.audit_frac > 0 and pool.size:
                n_audit = min(
                    pool.size,
                    int(math.ceil(settings.audit_frac * pool.size)),
                )
            rng = _cell_audit_rng(
                settings, algorithm, graph.name, model, device.name
            )
            audit = (
                np.sort(rng.choice(pool, size=n_audit, replace=False))
                if n_audit
                else np.zeros(0, dtype=int)
            )
            cells.append((chosen, audit))
        plans.append((model, devices, specs, pred_matrix, cells))
    # -- union the selections into an ordered semantic-group list ------
    # Kernel cost is per semantic group (shared across models and
    # devices), so selection priority interleaves cells by rank: every
    # cell's best pick enters before any cell's second pick, and audit
    # groups come after all ranked picks.  ``max_groups`` truncates this
    # list — a deterministic hard budget on block kernel executions.
    ordered_keys: List[SemanticKey] = []
    seen: Set[SemanticKey] = set()
    max_rank = max(
        (len(chosen) for _, _, _, _, cells in plans for chosen, _ in cells),
        default=0,
    )
    for rank in range(max_rank):
        for model, devices, specs, _, cells in plans:
            for chosen, _ in cells:
                if rank < len(chosen):
                    key = specs[int(chosen[rank])].semantic_key()
                    if key not in seen:
                        seen.add(key)
                        ordered_keys.append(key)
    for model, devices, specs, _, cells in plans:
        for _, audit in cells:
            for i in audit:
                key = specs[int(i)].semantic_key()
                if key not in seen:
                    seen.add(key)
                    ordered_keys.append(key)
    if settings.max_groups is not None:
        ordered_keys = ordered_keys[: settings.max_groups]
    executed_keys = set(ordered_keys)
    all_keys = {
        spec.semantic_key()
        for _, _, specs, _, _ in plans
        for spec in specs
    }
    summary.groups_total += len(all_keys)
    summary.groups_executed += len(executed_keys & all_keys)
    # -- execute the selected groups, back-fill the rest ---------------
    for model, devices, specs, pred_matrix, cells in plans:
        exec_index_set = {
            i for i, spec in enumerate(specs)
            if spec.semantic_key() in executed_keys
        }
        exec_specs = [specs[i] for i in sorted(exec_index_set)]
        measured: Dict[Tuple[StyleSpec, str], RunResult] = {}
        for run in sweep_block_runs(
            launcher, exec_specs, graph, devices, failures=failures
        ):
            measured[(run.spec, run.device)] = run
        audited_by_device = {
            devices[j].name: {int(i) for i in cells[j][1]}
            for j in range(len(devices))
        }
        # Per-cell calibration: the measured runs re-anchor the model's
        # absolute scale (geometric median of measured/predicted), so
        # back-filled times are comparable to the measured ones even when
        # the model extrapolates across input scales.  Ranking within the
        # cell is unchanged — a positive multiplier preserves order.
        calibration: Dict[str, float] = {}
        for j, device in enumerate(devices):
            log_ratios = [
                math.log(run.seconds / pred_matrix[i, j])
                for i in sorted(exec_index_set)
                for run in (measured.get((specs[i], device.name)),)
                if run is not None and np.isfinite(pred_matrix[i, j])
                and pred_matrix[i, j] > 0
            ]
            calibration[device.name] = (
                math.exp(float(np.median(log_ratios))) if log_ratios else 1.0
            )
        # Canonical `for spec: for device` emission order, like the
        # exhaustive path.
        cell_stats = {
            device.name: CellPrediction(
                algorithm=algorithm.value,
                model=model.value,
                graph=graph.name,
                device=device.name,
                n_variants=len(specs),
                n_measured=0,
                n_predicted=0,
                n_audited=0,
                calibration=calibration[device.name],
            )
            for device in devices
        }
        for i, spec in enumerate(specs):
            for j, device in enumerate(devices):
                stats = cell_stats[device.name]
                run = measured.get((spec, device.name))
                if run is not None:
                    stats.n_measured += 1
                    if stats.winner_seconds is None or (
                        run.seconds < stats.winner_seconds
                    ):
                        stats.winner_seconds = run.seconds
                        stats.winner_style = spec.label()
                    if i in audited_by_device[device.name]:
                        stats.n_audited += 1
                    yield run
                    continue
                if i in exec_index_set:
                    # Selected for execution but produced no run — the
                    # failure manifest records why; no back-fill.
                    continue
                seconds = float(pred_matrix[i, j]) * calibration[device.name]
                stats.n_predicted += 1
                if stats.predicted_floor_unmeasured is None or (
                    seconds < stats.predicted_floor_unmeasured
                ):
                    stats.predicted_floor_unmeasured = seconds
                yield RunResult(
                    spec=spec,
                    device=device.name,
                    graph=graph.name,
                    seconds=seconds,
                    throughput_ges=graph.n_edges / seconds / 1e9,
                    verified=False,
                    iterations=0,
                    launches=0,
                    predicted=True,
                )
        # -- per-cell audit error and regret-risk accounting -----------
        for j, device in enumerate(devices):
            stats = cell_stats[device.name]
            errors = []
            for i in audited_by_device[device.name]:
                run = measured.get((specs[i], device.name))
                if run is None:
                    continue
                predicted = pred_matrix[i, j] * calibration[device.name]
                if np.isfinite(predicted) and run.seconds > 0:
                    errors.append(
                        abs(run.seconds - predicted) / run.seconds
                    )
            if errors:
                stats.audit_max_rel_error = float(max(errors))
            if (
                stats.winner_seconds is not None
                and stats.predicted_floor_unmeasured is not None
                and stats.predicted_floor_unmeasured < stats.winner_seconds
            ):
                stats.at_risk = True
                message = (
                    "pruned variant predicted faster "
                    f"({stats.predicted_floor_unmeasured:.3e}s) than the "
                    f"measured winner {stats.winner_style} "
                    f"({stats.winner_seconds:.3e}s); re-run without "
                    "--predict to confirm the cell"
                )
                failures.append(
                    FailedRun(
                        algorithm=algorithm.value,
                        graph=graph.name,
                        error_class=ErrorClass.VERIFICATION,
                        message=message,
                        digest=error_digest(ErrorClass.VERIFICATION, message),
                        stage="prediction",
                        model=model.value,
                        device=device.name,
                    )
                )
            summary.cells.append(stats)
