"""Study harness: sweeps, ratio statistics, analyses, baselines, reports."""

from .advisor import AdvisorReport, Recommendation, advise
from .analysis import (
    BEST_STYLE_AXES,
    COMBINATION_STYLES,
    best_style_percentages,
    property_correlations,
    style_combination_matrix,
)
from .baselines import BASELINES, BaselineRun, baseline_style, baseline_trace
from .boxen import LetterValues, letter_values
from .comparison import SpeedupCell, baseline_speedups, best_style_spec, table6
from .checkpoint import BlockOutcome, CheckpointStore
from .convergence import ConvergenceRecord, collect_convergence, render_convergence
from .export import (
    combination_matrix_to_csv,
    failure_manifest_to_csv,
    figure_ratios_to_csv,
    sweep_to_csv,
)
from .storage import (
    cached_sweep,
    code_fingerprint,
    load_results,
    save_results,
    sweep_cache_key,
    sweep_cache_path,
)
from .tracestore import (
    TraceStore,
    TraceStoreStats,
    default_trace_dir,
    kernel_code_fingerprint,
    resolve_trace_store,
    trace_digest,
)
from .guidelines import Guideline, derive_guidelines
from .harness import StudyResults, SweepConfig, run_sweep, sweep_block_runs
from .parallel import (
    SweepBlock,
    partition_blocks,
    resolve_block_timeout,
    resolve_work_stealing,
    resolve_workers,
    run_sweep_parallel,
    semantic_shard_order,
    shard_blocks,
    stderr_progress,
)
from .ratios import axis_ratios, ratios_by_algorithm, throughputs_by_option
from . import report

__all__ = [
    "SweepConfig",
    "StudyResults",
    "run_sweep",
    "run_sweep_parallel",
    "sweep_block_runs",
    "SweepBlock",
    "BlockOutcome",
    "CheckpointStore",
    "partition_blocks",
    "resolve_block_timeout",
    "resolve_work_stealing",
    "resolve_workers",
    "stderr_progress",
    "cached_sweep",
    "failure_manifest_to_csv",
    "code_fingerprint",
    "sweep_cache_key",
    "sweep_cache_path",
    "semantic_shard_order",
    "shard_blocks",
    "TraceStore",
    "TraceStoreStats",
    "default_trace_dir",
    "kernel_code_fingerprint",
    "resolve_trace_store",
    "trace_digest",
    "axis_ratios",
    "ratios_by_algorithm",
    "throughputs_by_option",
    "LetterValues",
    "letter_values",
    "BEST_STYLE_AXES",
    "COMBINATION_STYLES",
    "best_style_percentages",
    "style_combination_matrix",
    "property_correlations",
    "BaselineRun",
    "BASELINES",
    "baseline_trace",
    "baseline_style",
    "SpeedupCell",
    "best_style_spec",
    "baseline_speedups",
    "table6",
    "advise",
    "AdvisorReport",
    "Recommendation",
    "save_results",
    "load_results",
    "sweep_to_csv",
    "figure_ratios_to_csv",
    "combination_matrix_to_csv",
    "ConvergenceRecord",
    "collect_convergence",
    "render_convergence",
    "Guideline",
    "derive_guidelines",
    "report",
]
