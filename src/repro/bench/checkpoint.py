"""Resumable sweep checkpoints: stream finished blocks to disk.

A multi-minute sweep that dies at block 29/30 — worker crash, OOM killer,
Ctrl-C — should not re-execute the 28 finished blocks.  The supervisor
streams every *healthy* block outcome into an append-only checkpoint
directory under the sweep cache as soon as it completes; ``repro sweep
--resume`` loads those entries, skips their blocks, and re-runs only what
is missing (including previously quarantined blocks, which are
deliberately *not* checkpointed).

The store is keyed by the sweep's content address (configuration + scale
+ simulator source fingerprint), so an entry can never be resumed into a
different sweep or survive a source edit.  Every entry is written
atomically (``*.tmp`` then :func:`os.replace`) with an embedded SHA-256
checksum; a truncated or tampered entry is detected on load, moved to a
``quarantine/`` subdirectory with a warning, and its block simply re-runs
— corruption costs one block, never the sweep.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..runtime.errors import CheckpointCorruptError, FailedRun
from ..runtime.launcher import RunResult
from ..runtime.locking import store_lock
from . import faults

__all__ = ["BlockOutcome", "CheckpointStore"]

PathLike = Union[str, Path]
#: (algorithm value, graph name) plus, for semantic shards of one block,
#: a ``shard-i-of-n`` component (see :meth:`SweepBlock.key`).
BlockKey = Tuple[str, ...]

_MAGIC = "repro-sweep-checkpoint-v1"


@dataclass
class BlockOutcome:
    """What one (algorithm, graph) block produced: its runs plus any
    per-variant failure records."""

    runs: List[RunResult] = field(default_factory=list)
    failures: List[FailedRun] = field(default_factory=list)
    #: Kernels the block actually executed (trace-store hits excluded).
    #: Deliberately not checkpointed: it counts work done by *this*
    #: invocation, and a resumed block executes nothing.
    kernel_executions: int = 0

    @property
    def healthy(self) -> bool:
        """True when the block executed (possibly with variant failures)
        rather than being quarantined outright."""
        return bool(self.runs) or not any(
            f.stage == "block" for f in self.failures
        )


class CheckpointStore:
    """Per-sweep directory of atomically-written, checksummed block
    entries."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)

    @classmethod
    def for_config(
        cls, config, cache_dir: Optional[PathLike] = None
    ) -> "CheckpointStore":
        """The store for one sweep, under the sweep cache directory."""
        from .storage import default_cache_dir, sweep_cache_key

        base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        return cls(base / "checkpoints" / sweep_cache_key(config))

    # ------------------------------------------------------------------
    def entry_path(self, index: int) -> Path:
        return self.directory / f"block-{index:04d}.ckpt"

    def save_block(
        self, index: int, key: BlockKey, outcome: BlockOutcome
    ) -> Path:
        """Atomically persist one finished block (tmp + rename, checksummed)."""
        body = pickle.dumps(
            {
                "magic": _MAGIC,
                "index": index,
                "key": tuple(key),
                "runs": outcome.runs,
                "failures": outcome.failures,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = hashlib.sha256(body).hexdigest().encode("ascii") + b"\n" + body
        path = self.entry_path(index)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Advisory lock: two sweeps resumed against the same checkpoint
        # directory must not interleave their tmp/rename cycles with each
        # other's clear()/quarantine sweeps.
        with store_lock(self.directory):
            tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        faults.maybe_corrupt_checkpoint(path, key[0], key[1])
        return path

    def load(
        self, expected: Optional[Dict[int, BlockKey]] = None
    ) -> Dict[int, BlockOutcome]:
        """All valid entries, by block index.

        ``expected`` maps block index -> (algorithm, graph) of the sweep
        being resumed; entries that do not match are ignored.  Corrupt
        entries are quarantined with a stderr warning and skipped.
        """
        out: Dict[int, BlockOutcome] = {}
        if not self.directory.is_dir():
            return out
        for path in sorted(self.directory.glob("block-*.ckpt")):
            try:
                entry = self._read_entry(path)
            except CheckpointCorruptError as exc:
                self._quarantine(path, exc)
                continue
            index = entry["index"]
            key = tuple(entry["key"])
            if expected is not None and expected.get(index) != key:
                continue
            out[index] = BlockOutcome(
                runs=entry["runs"], failures=entry["failures"]
            )
        return out

    def clear(self) -> None:
        """Remove the whole store (quarantined entries included)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("block-*.ckpt"))

    # ------------------------------------------------------------------
    @staticmethod
    def _read_entry(path: Path) -> dict:
        blob = path.read_bytes()
        checksum, sep, body = blob.partition(b"\n")
        if not sep or len(checksum) != 64:
            raise CheckpointCorruptError(f"{path.name}: missing checksum header")
        if hashlib.sha256(body).hexdigest().encode("ascii") != checksum:
            raise CheckpointCorruptError(
                f"{path.name}: checksum mismatch (truncated or tampered entry)"
            )
        try:
            entry = pickle.loads(body)
        except Exception as exc:
            raise CheckpointCorruptError(
                f"{path.name}: cannot unpickle entry ({exc})"
            ) from None
        if not isinstance(entry, dict) or entry.get("magic") != _MAGIC:
            raise CheckpointCorruptError(
                f"{path.name}: not a sweep checkpoint entry"
            )
        return entry

    def _quarantine(self, path: Path, reason: Exception) -> None:
        quarantine = self.directory / "quarantine"
        dest = quarantine / path.name
        try:
            with store_lock(self.directory):
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(path, dest)
        except OSError:
            return
        print(
            f"warning: corrupt checkpoint entry quarantined to {dest}: {reason}",
            file=sys.stderr,
        )
