"""Style advisor: operationalize the Section 5.16 guidelines for one input.

The paper's closing deliverable is a set of conditional recommendations
("high-degree inputs prefer warp granularity...").  This module applies
them to a *user's* graph: it inspects the input's shape (degree
distribution, diameter class) and produces concrete style recommendations
per programming model, each tagged with the paper section it comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..graph.csr import CSRGraph
from ..graph.properties import GraphProperties, analyze
from ..styles.axes import (
    AtomicFlavor,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Flow,
    GpuReduction,
    Granularity,
    Model,
    OmpSchedule,
    Persistence,
)

__all__ = ["Recommendation", "AdvisorReport", "advise"]

#: An input counts as "high degree" for warp granularity when a meaningful
#: share of vertices fills a warp (paper Table 5 / Section 5.8).
WARP_WORTHY_FRACTION = 0.05
#: Diameter (relative to log2 of the vertex count) beyond which an input
#: behaves like the paper's road/grid class for the driver axis.
HIGH_DIAMETER_FACTOR = 4.0


@dataclass(frozen=True)
class Recommendation:
    """One concrete style choice with its rationale."""

    axis: str
    choice: str
    rationale: str
    section: str
    model: Optional[Model] = None  #: None = applies to every model

    def render(self) -> str:
        scope = f"[{self.model.value}] " if self.model else ""
        return (
            f"{scope}{self.axis} = {self.choice}\n"
            f"    {self.rationale} (paper §{self.section})"
        )


@dataclass(frozen=True)
class AdvisorReport:
    """All recommendations for one input."""

    properties: GraphProperties
    recommendations: List[Recommendation]

    def for_model(self, model: Model) -> List[Recommendation]:
        return [
            r for r in self.recommendations if r.model in (None, model)
        ]

    def render(self) -> str:
        p = self.properties
        lines = [
            f"input: {p.name} — {p.n_vertices:,} vertices, "
            f"{p.n_edges:,} directed edges, d_avg={p.avg_degree:.1f}, "
            f"d_max={p.max_degree:,}, diameter~{p.diameter:,}",
            "",
        ]
        lines += [r.render() for r in self.recommendations]
        return "\n".join(lines)


def advise(graph: CSRGraph, *, diameter: Optional[int] = None) -> AdvisorReport:
    """Produce style recommendations for one input graph."""
    props = analyze(graph, diameter=diameter)
    recs: List[Recommendation] = []

    # Universal recommendations (Section 5.16).
    recs.append(Recommendation(
        "determinism", Determinism.NON_DETERMINISTIC.value,
        "in-place execution converges in fewer passes and skips the "
        "double-buffer refresh", "5.6",
    ))
    recs.append(Recommendation(
        "flow", Flow.PUSH.value,
        "push reads its own value once per item and pairs naturally with "
        "worklists; pull re-reads per neighbor", "5.4",
    ))
    recs.append(Recommendation(
        "atomic_flavor", AtomicFlavor.ATOMIC.value,
        "default cuda::atomic (seq_cst, system scope) costs 10-100x; use "
        "classic atomics or explicitly relax the ordering/scope",
        "5.1", Model.CUDA,
    ))
    recs.append(Recommendation(
        "persistence", Persistence.NON_PERSISTENT.value,
        "persistent grids only pay off when work is reusable across items",
        "5.7", Model.CUDA,
    ))
    recs.append(Recommendation(
        "gpu_reduction", GpuReduction.REDUCTION_ADD.value,
        "warp-shuffle trees beat both global-add serialization and "
        "block-add's barrier + leftover global add", "5.9", Model.CUDA,
    ))
    recs.append(Recommendation(
        "cpu_reduction", CpuReduction.CLAUSE.value,
        "the reduction clause (or private partials in C++) avoids both "
        "atomics and critical sections", "5.10",
    ))
    recs.append(Recommendation(
        "omp_schedule", OmpSchedule.DEFAULT.value,
        "dynamic dispatch is pure overhead unless per-item work is both "
        "large and imbalanced", "5.11", Model.OPENMP,
    ))

    # Input-dependent recommendations.
    import math

    warp_worthy = props.pct_deg_ge_32 >= WARP_WORTHY_FRACTION
    recs.append(Recommendation(
        "granularity",
        (Granularity.WARP if warp_worthy else Granularity.THREAD).value,
        (
            f"{props.pct_deg_ge_32:.0%} of vertices fill a warp: strip-mine "
            "their neighbor loops"
            if warp_worthy
            else f"only {props.pct_deg_ge_32:.0%} of vertices reach degree "
            "32: a warp per vertex would idle its lanes"
        ),
        "5.8", Model.CUDA,
    ))

    high_diameter = props.diameter > HIGH_DIAMETER_FACTOR * math.log2(
        max(props.n_vertices, 2)
    )
    recs.append(Recommendation(
        "driver",
        (Driver.DATA if high_diameter else Driver.TOPOLOGY).value,
        (
            f"diameter ~{props.diameter} means topology-driven sweeps "
            "repeat the whole edge list that many times"
            if high_diameter
            else f"diameter ~{props.diameter} is small: full sweeps finish "
            "in a few passes and skip the worklist overhead"
        ),
        "5.3",
    ))
    # C++ threads lean topology-driven regardless (Section 5.16).
    if high_diameter:
        recs.append(Recommendation(
            "driver", Driver.TOPOLOGY.value,
            "exception: C++ threads pay per-step thread creation, so the "
            "worklist's many small steps often cost more than they save",
            "5.16", Model.CPP_THREADS,
        ))

    skewed = props.max_degree > 10 * max(props.avg_degree, 1.0)
    if skewed:
        recs.append(Recommendation(
            "cpp_schedule", CppSchedule.CYCLIC.value,
            f"d_max={props.max_degree:,} vs d_avg={props.avg_degree:.1f}: "
            "round-robin assignment breaks up hub clusters",
            "5.12", Model.CPP_THREADS,
        ))
    else:
        recs.append(Recommendation(
            "cpp_schedule", CppSchedule.BLOCKED.value,
            "uniform degrees: contiguous chunks keep streaming locality",
            "5.12", Model.CPP_THREADS,
        ))

    return AdvisorReport(properties=props, recommendations=recs)
