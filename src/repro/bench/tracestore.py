"""Persistent content-addressed store of semantic execution traces.

The launcher's central efficiency trick — execute each *semantic* style
combination once, re-time it for every mapping combination — previously
stopped at the process boundary: the trace cache lived in memory, so every
sweep, every worker process, and every resumed run re-executed (and
re-verified) the same kernels from scratch.  This store extends the trick
across processes and sessions: a trace is serialized once, keyed by
everything that determines its content, and any later launcher reassembles
it *bit-identically* with zero kernel executions.

The key of one entry is the tuple

    (graph content fingerprint, algorithm, semantic axes,
     kernel-code fingerprint, source vertex)

— precisely the inputs of ``kernel.run``.  The graph fingerprint hashes
the CSR arrays (:meth:`repro.graph.csr.CSRGraph.fingerprint`), so renamed
or rebuilt-but-identical graphs hit and *changed content misses*; the
kernel-code fingerprint hashes every source file the executed trace can
depend on, so any kernel edit invalidates exactly the stale entries; the
source vertex covers the one per-launcher seed (BFS/SSSP root).

Entries are single files: a checksummed header line followed by a
compressed numpy archive holding the output values, every per-launch
``inner`` array, and a JSON metadata record with the exact scalar profile
fields (Python's JSON round-trips floats losslessly).  Writes are atomic
(``tmp`` + rename); a truncated, bit-flipped or unparseable entry is
*quarantined* on read — moved aside with a stderr warning, never silently
deleted, and never able to crash a sweep.

Resolution order for whether a launcher uses the store:

* ``$REPRO_TRACE_CACHE=0`` (or empty) — hard kill switch, wins over all;
* ``$REPRO_TRACE_CACHE=/path`` — use that directory;
* callers that opt in (the sweep paths; ``SweepConfig.trace_cache``,
  default on) — use ``~/.cache/repro/traces``;
* everything else (a bare ``Launcher()``) — off unless the environment
  opts in.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sys
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..kernels.base import KernelResult
from ..machine.trace import ExecutionTrace, IterationProfile
from ..runtime.locking import store_lock
from ..styles.spec import SemanticKey

__all__ = [
    "TRACE_CACHE_ENV",
    "TraceStore",
    "TraceStoreStats",
    "default_trace_dir",
    "resolve_trace_store",
    "kernel_code_fingerprint",
    "trace_digest",
]

#: Trace-store directory override / kill switch (``0``/empty disables).
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

_MAGIC = b"repro-trace-v1"

#: IterationProfile fields serialized as JSON scalars (everything but the
#: numpy ``inner`` array).
_PROFILE_SCALARS = tuple(
    f.name for f in fields(IterationProfile) if f.name != "inner"
)

_TRACE_SCALARS = ("n_edges", "n_vertices", "iterations", "converged", "label")


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
_kernel_fp_memo: Optional[str] = None


def kernel_code_fingerprint() -> str:
    """SHA-256 over every source file an execution trace depends on.

    Narrower than :func:`repro.bench.storage.code_fingerprint` (which
    hashes the whole package and guards *results*): a trace is determined
    by the kernels, the trace/profile model, and the verification oracles
    — editing a figure renderer must not invalidate stored traces.
    """
    global _kernel_fp_memo
    if _kernel_fp_memo is None:
        root = Path(__file__).resolve().parent.parent
        paths = sorted((root / "kernels").rglob("*.py"))
        paths.append(root / "machine" / "trace.py")
        paths.append(root / "runtime" / "verify.py")
        digest = hashlib.sha256()
        for path in paths:
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _kernel_fp_memo = digest.hexdigest()
    return _kernel_fp_memo


def trace_digest(trace: ExecutionTrace) -> str:
    """Canonical SHA-256 of a trace's full content.

    Two traces with equal digests are byte-identical for every consumer
    (timing models, sanitizer, inspection); used by tests and ``repro
    cache verify`` to prove stored traces reassemble exactly.
    """
    digest = hashlib.sha256()
    meta = [_scalars_of(trace, _TRACE_SCALARS)]
    for profile in trace.profiles:
        meta.append(_scalars_of(profile, _PROFILE_SCALARS))
        digest.update(b"i" if profile.inner is not None else b"-")
        if profile.inner is not None:
            digest.update(profile.inner.tobytes())
    digest.update(json.dumps(meta, sort_keys=True).encode())
    return digest.hexdigest()


def _scalars_of(obj, names: Tuple[str, ...]) -> Dict[str, object]:
    out = {}
    for name in names:
        value = getattr(obj, name)
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            value = value.item()
        out[name] = value
    return out


#: Per-process memo of graph-property payloads, keyed by graph content
#: fingerprint: the diameter estimate costs a few BFS sweeps, and one
#: sweep saves many semantic traces of the same graph.
_graph_props_memo: Dict[str, Dict[str, object]] = {}


def _graph_properties_payload(graph: CSRGraph) -> Dict[str, object]:
    fp = graph.fingerprint()
    payload = _graph_props_memo.get(fp)
    if payload is None:
        from ..graph.properties import analyze

        payload = analyze(graph).to_dict()
        _graph_props_memo[fp] = payload
    return payload


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def default_trace_dir() -> Path:
    """``~/.cache/repro/traces`` (respecting ``$XDG_CACHE_HOME``)."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "traces"


def resolve_trace_store(
    enabled: Optional[bool] = None,
    directory: Optional[Union[str, Path]] = None,
) -> Optional["TraceStore"]:
    """The store an execution path should use, or ``None`` for disabled.

    ``enabled`` is the caller's default (``True`` for sweep paths,
    ``None`` for a bare launcher, ``False`` for an explicit opt-out);
    ``$REPRO_TRACE_CACHE`` overrides in both directions as described in
    the module docstring.
    """
    env = os.environ.get(TRACE_CACHE_ENV)
    if env is not None and env.strip() in ("", "0"):
        return None
    if enabled is False:
        return None
    if directory is not None:
        return TraceStore(directory)
    if env:
        return TraceStore(env)
    if enabled:
        return TraceStore(default_trace_dir())
    return None


@dataclass
class TraceStoreStats:
    """What ``repro cache stats`` reports."""

    directory: Path
    entries: int = 0
    total_bytes: int = 0
    stale: int = 0  #: entries whose kernel fingerprint is no longer current
    unverified: int = 0
    quarantined: int = 0
    by_algorithm: Dict[str, int] = None

    def render(self) -> str:
        lines = [
            f"trace store: {self.directory}",
            f"  entries:     {self.entries} ({self.total_bytes / 1e6:.2f} MB)",
            f"  stale:       {self.stale} (kernel code changed since stored)",
            f"  unverified:  {self.unverified}",
            f"  quarantined: {self.quarantined}",
        ]
        if self.by_algorithm:
            per = ", ".join(
                f"{k}: {v}" for k, v in sorted(self.by_algorithm.items())
            )
            lines.append(f"  by algorithm: {per}")
        return "\n".join(lines)


class TraceStore:
    """Directory of checksummed, compressed, content-addressed traces."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def _semantic_payload(semantic: SemanticKey) -> Dict[str, Optional[str]]:
        return {
            f.name: (None if getattr(semantic, f.name) is None
                     else getattr(semantic, f.name).value)
            for f in fields(SemanticKey)
        }

    @classmethod
    def key_payload(
        cls, graph_fp: str, semantic: SemanticKey, source: int
    ) -> Dict[str, object]:
        return {
            "graph": graph_fp,
            "semantic": cls._semantic_payload(semantic),
            "kernel_code": kernel_code_fingerprint(),
            "source": int(source),
        }

    @classmethod
    def entry_key(
        cls, graph_fp: str, semantic: SemanticKey, source: int
    ) -> str:
        payload = json.dumps(
            cls.key_payload(graph_fp, semantic, source), sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def entry_path(
        self, graph: CSRGraph, semantic: SemanticKey, source: int
    ) -> Path:
        key = self.entry_key(graph.fingerprint(), semantic, source)
        return self.directory / f"trace-{key}.npz"

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(
        self,
        graph: CSRGraph,
        semantic: SemanticKey,
        source: int,
        result: KernelResult,
        *,
        verified: bool,
    ) -> Path:
        """Atomically persist one semantic execution (idempotent)."""
        trace = result.trace
        meta = {
            "magic": _MAGIC.decode(),
            "key": self.key_payload(graph.fingerprint(), semantic, source),
            "graph_name": graph.name,
            "algorithm": semantic.algorithm.value,
            # Graph properties ride along (additively — not part of the
            # key) so the training-set miner can turn a stored trace into
            # feature rows without rebuilding the graph.  Entries from
            # before this field are still valid traces; the miner skips
            # them.
            "graph_properties": _graph_properties_payload(graph),
            "verified": bool(verified),
            "trace": _scalars_of(trace, _TRACE_SCALARS),
            "profiles": [
                dict(
                    _scalars_of(profile, _PROFILE_SCALARS),
                    has_inner=profile.inner is not None,
                )
                for profile in trace.profiles
            ],
            "values_dtype": result.values.dtype.str,
        }
        arrays = {
            "meta": np.frombuffer(
                json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
            ),
            "values": result.values,
        }
        for i, profile in enumerate(trace.profiles):
            if profile.inner is not None:
                arrays[f"inner_{i}"] = profile.inner
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        body = buffer.getvalue()
        checksum = hashlib.sha256(body).hexdigest().encode("ascii")
        path = self.entry_path(graph, semantic, source)
        self.directory.mkdir(parents=True, exist_ok=True)
        # The advisory store lock orders this write against a concurrent
        # GC in another process (which could otherwise unlink the tmp file
        # or the just-renamed entry mid-cycle); single-process atomicity
        # comes from the tmp + rename, not the lock.
        with store_lock(self.directory):
            tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
            tmp.write_bytes(_MAGIC + b" " + checksum + b"\n" + body)
            os.replace(tmp, path)
        self.stores += 1
        return path

    def load(
        self,
        graph: CSRGraph,
        semantic: SemanticKey,
        source: int,
        *,
        require_verified: bool = True,
    ) -> Optional[KernelResult]:
        """Reassemble one stored execution, or ``None`` on any miss.

        A corrupt entry (bad checksum, truncated archive, wrong key) is
        quarantined and reads as a miss; an entry stored without
        verification is a miss for a verifying launcher.
        """
        path = self.entry_path(graph, semantic, source)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            meta, archive = self._decode(blob)
            expected = self.key_payload(graph.fingerprint(), semantic, source)
            if meta["key"] != expected:
                raise ValueError("entry key does not match its address")
            result = self._reassemble(meta, archive)
        except Exception as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        if require_verified and not meta["verified"]:
            self.misses += 1
            return None
        self.hits += 1
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _decode(blob: bytes) -> Tuple[dict, dict]:
        header, sep, body = blob.partition(b"\n")
        if not sep or not header.startswith(_MAGIC + b" "):
            raise ValueError("missing trace-store header")
        checksum = header.split(b" ", 1)[1]
        if hashlib.sha256(body).hexdigest().encode("ascii") != checksum:
            raise ValueError("checksum mismatch (truncated or corrupt entry)")
        with np.load(io.BytesIO(body), allow_pickle=False) as npz:
            archive = {name: npz[name] for name in npz.files}
        meta = json.loads(archive.pop("meta").tobytes().decode())
        if meta.get("magic") != _MAGIC.decode():
            raise ValueError("not a trace-store entry")
        return meta, archive

    @staticmethod
    def _reassemble(meta: dict, archive: dict) -> KernelResult:
        trace = ExecutionTrace(**meta["trace"])
        for i, scalars in enumerate(meta["profiles"]):
            scalars = dict(scalars)
            has_inner = scalars.pop("has_inner")
            inner = archive[f"inner_{i}"] if has_inner else None
            trace.add(IterationProfile(inner=inner, **scalars))
        values = archive["values"]
        if values.dtype.str != meta["values_dtype"]:
            raise ValueError("values dtype mismatch")
        return KernelResult(values=values, trace=trace)

    def _quarantine(self, path: Path, reason: Exception) -> None:
        quarantine = self.directory / "quarantine"
        dest = quarantine / path.name
        try:
            with store_lock(self.directory):
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(path, dest)
        except OSError:
            return
        print(
            f"warning: corrupt trace-store entry quarantined to {dest}: "
            f"{reason}",
            file=sys.stderr,
        )

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` subcommands)
    # ------------------------------------------------------------------
    def _entries(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("trace-*.npz"))

    def iter_entries(self):
        """Yield ``(meta, KernelResult)`` for every decodable entry.

        Undecodable entries are silently skipped (``verify``/``gc`` own
        quarantining); callers filter on the metadata — the training-set
        miner wants current-kernel-code, verified entries that carry
        ``graph_properties``.
        """
        for path in self._entries():
            try:
                meta, archive = self._decode(path.read_bytes())
                result = self._reassemble(meta, archive)
            except Exception:
                continue
            yield meta, result

    def stats(self) -> TraceStoreStats:
        """Scan the store (reads every entry's metadata)."""
        stats = TraceStoreStats(directory=self.directory, by_algorithm={})
        current = kernel_code_fingerprint()
        quarantine = self.directory / "quarantine"
        if quarantine.is_dir():
            stats.quarantined = sum(1 for _ in quarantine.iterdir())
        for path in self._entries():
            stats.entries += 1
            stats.total_bytes += path.stat().st_size
            try:
                meta, _ = self._decode(path.read_bytes())
            except Exception:
                continue  # verify/gc deal with corrupt entries
            algorithm = meta.get("algorithm", "?")
            stats.by_algorithm[algorithm] = (
                stats.by_algorithm.get(algorithm, 0) + 1
            )
            if meta["key"].get("kernel_code") != current:
                stats.stale += 1
            if not meta.get("verified", False):
                stats.unverified += 1
        return stats

    def gc(self, *, everything: bool = False) -> Tuple[int, int]:
        """Drop stale entries (kernel code changed) and the quarantine.

        ``everything=True`` clears the whole store.  Returns
        ``(entries_removed, bytes_reclaimed)``.  Holds the store's
        advisory lock throughout, so two servers (or a server and a
        ``repro cache gc``) on one machine cannot double-run GC or unlink
        an entry out from under a concurrent writer's tmp/rename cycle.
        """
        current = kernel_code_fingerprint()
        with store_lock(self.directory):
            return self._gc_locked(everything, current)

    def _gc_locked(self, everything: bool, current: str) -> Tuple[int, int]:
        removed = 0
        reclaimed = 0
        for path in self._entries():
            drop = everything
            if not drop:
                try:
                    meta, _ = self._decode(path.read_bytes())
                    drop = meta["key"].get("kernel_code") != current
                except Exception:
                    drop = True  # unreadable: gc reclaims it
            if drop:
                size = path.stat().st_size
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                reclaimed += size
        quarantine = self.directory / "quarantine"
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                size = path.stat().st_size
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                reclaimed += size
        return removed, reclaimed

    def verify_entries(self) -> Tuple[int, List[Tuple[Path, str]]]:
        """Fully decode every entry; quarantine the ones that fail.

        Returns ``(ok_count, [(quarantined_path, reason), ...])``.
        """
        ok = 0
        bad: List[Tuple[Path, str]] = []
        for path in self._entries():
            try:
                meta, archive = self._decode(path.read_bytes())
                result = self._reassemble(meta, archive)
                trace_digest(result.trace)  # full content walk
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
                self._quarantine(path, exc)
                bad.append((self.directory / "quarantine" / path.name, reason))
                continue
            ok += 1
        return ok, bad

    def __len__(self) -> int:
        return len(self._entries())

    def __bool__(self) -> bool:
        # A store object is always "on" — an *empty* store must not read
        # as "no store" in `store or ...` / `if store:` expressions.
        return True
