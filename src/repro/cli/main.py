"""Command-line interface: ``indigo2py`` / ``python -m repro``.

Subcommands:

* ``datasets``  — print the five inputs' Table 4/5 properties.
* ``specs``     — print the version counts (Table 3) or list variants.
* ``run``       — run one program variant on one input and device.
* ``sweep``     — run the full study sweep and dump throughputs as CSV.
* ``table``     — regenerate one of the paper's tables (1-6).
* ``figure``    — regenerate one of the paper's figures (1-16).
* ``analyze``   — style-conformance linter / trace sanitizer.
* ``serve``     — always-on style-advisor HTTP service.
* ``cache``     — inspect / garbage-collect the persistent trace store.
* ``predictor`` — train / inspect the learned style-performance model.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..graph.datasets import dataset_names, load_all, load_dataset
from ..graph.properties import analyze
from ..machine.devices import DEVICES, get_device
from ..styles.axes import Algorithm, Dup, Model
from ..styles.combos import enumerate_specs
from ..runtime.launcher import Launcher

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="indigo2py",
        description=(
            "Reproduction of 'Choosing the Best Parallelization and "
            "Implementation Styles for Graph Analytics Codes' (SC '23)"
        ),
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=("tiny", "default", "full"),
        help="input-graph scale (default: default)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="show the five inputs (Tables 4 and 5)")

    specs = sub.add_parser("specs", help="show the suite's program variants")
    specs.add_argument("--algorithm", choices=[a.value for a in Algorithm])
    specs.add_argument("--model", choices=[m.value for m in Model])
    specs.add_argument("--list", action="store_true", help="list variant labels")

    run = sub.add_parser("run", help="run one program variant")
    run.add_argument("--algorithm", required=True, choices=[a.value for a in Algorithm])
    run.add_argument("--model", required=True, choices=[m.value for m in Model])
    run.add_argument("--graph", required=True, choices=dataset_names())
    run.add_argument("--device", required=True, choices=sorted(DEVICES))
    run.add_argument(
        "--index", type=int, default=0,
        help="variant index within the enumeration (see `specs --list`)",
    )

    sweep = sub.add_parser("sweep", help="run the full sweep, print CSV")
    sweep.add_argument("--algorithm", choices=[a.value for a in Algorithm])
    sweep.add_argument("--model", choices=[m.value for m in Model])
    sweep.add_argument(
        "--predict", action="store_true",
        help="predict-then-verify mode: rank variants with the trained "
             "style predictor, execute only the top-k plus an audit "
             "sample per cell, back-fill the rest as predictions "
             "(runs serially; see docs/reproduce.md §3f)",
    )
    sweep.add_argument(
        "--top-k", type=int, default=8, metavar="K",
        help="with --predict: measured variants per (algorithm, model, "
             "graph, device) cell (default: 8)",
    )
    sweep.add_argument(
        "--audit-frac", type=float, default=0.02, metavar="F",
        help="with --predict: fraction of pruned variants re-measured as "
             "a seeded audit sample (default: 0.02)",
    )
    sweep.add_argument(
        "--audit-seed", type=int, default=0, metavar="N",
        help="with --predict: seed for the audit sample (default: 0)",
    )
    sweep.add_argument(
        "--max-groups", type=int, default=None, metavar="N",
        help="with --predict: hard cap on executed semantic groups per "
             "(algorithm, graph) block (default: no cap)",
    )
    sweep.add_argument(
        "--predictor", metavar="PATH", default=None,
        help="with --predict: model artifact to use (default: "
             "$REPRO_PREDICTOR, else the sweep cache's predictor/)",
    )
    _add_workers_flag(sweep)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("id", type=int, choices=range(1, 7))
    _add_results_flags(table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "id",
        help="figure id: 1-16 (e.g. 1, 9; sub-panels print together)",
    )
    _add_results_flags(figure)

    guidelines = sub.add_parser(
        "guidelines",
        help="re-derive the paper's Section 5.16 programming guidelines",
    )
    _add_results_flags(guidelines)

    adv = sub.add_parser(
        "advise",
        help="recommend styles for one input graph (Section 5.16 applied)",
    )
    adv.add_argument("--graph", choices=dataset_names())
    adv.add_argument("--file", help="path to a graph file instead of --graph")

    conv = sub.add_parser(
        "convergence",
        help="show iteration counts per semantic style (Section 2.6 effects)",
    )
    conv.add_argument("--algorithm", choices=[a.value for a in Algorithm])

    trace = sub.add_parser(
        "trace",
        help="show the execution-trace breakdown of one program variant",
    )
    trace.add_argument("--algorithm", required=True, choices=[a.value for a in Algorithm])
    trace.add_argument("--model", required=True, choices=[m.value for m in Model])
    trace.add_argument("--graph", required=True, choices=dataset_names())
    trace.add_argument("--index", type=int, default=0)
    trace.add_argument("--csv", action="store_true", help="dump per-launch CSV")

    gen = sub.add_parser(
        "generate",
        help="write the Indigo2-style generated source suite to a directory",
    )
    gen.add_argument("out_dir", help="output directory for the source files")
    gen.add_argument("--algorithm", choices=[a.value for a in Algorithm])
    gen.add_argument("--model", choices=[m.value for m in Model])
    gen.add_argument(
        "--limit", type=int, default=None,
        help="write at most N variants per (algorithm, model) pair",
    )
    gen.add_argument(
        "--bits", choices=("32", "64", "both"), default="32",
        help="data-type width(s): 32 (paper's evaluated set), 64, or both "
             "(the full Indigo2-style artifact)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the data plane (repro.robustness)",
    )
    fuzz.add_argument(
        "--cases", type=int, default=None,
        help="number of fuzz cases (default 200, or 60 with --smoke)",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--smoke", action="store_true",
        help="CI gate: planted-bug self-test plus a short fuzz run",
    )
    fuzz.add_argument(
        "--self-test", action="store_true",
        help="run only the planted-bug self-test",
    )
    fuzz.add_argument(
        "--manifest", metavar="PATH",
        help="write the replayable failure manifest to PATH",
    )
    fuzz.add_argument(
        "--replay", metavar="PATH",
        help="replay the non-ok entries of a saved manifest",
    )

    ana = sub.add_parser(
        "analyze",
        help="style-conformance linter / trace sanitizer (repro.analysis)",
    )
    ana.add_argument(
        "--suite", metavar="DIR",
        help="lint a generated suite directory (MANIFEST.tsv + sources)",
    )
    ana.add_argument(
        "--strict", action="store_true",
        help="with --suite: require the full enumeration even for "
             "suites generated with --limit",
    )
    ana.add_argument(
        "--ir", action="store_true",
        help="with --suite: also run the IR pipeline per source "
             "(structural parse, static race detection, 13-axis style "
             "inference + three-way differential)",
    )
    ana.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="with --suite: worker processes for per-file analysis "
             "(default: all cores; 1 = serial)",
    )
    ana.add_argument(
        "--trace", action="store_true",
        help="execute one variant and sanitize its execution trace",
    )
    ana.add_argument("--algorithm", choices=[a.value for a in Algorithm])
    ana.add_argument("--model", choices=[m.value for m in Model])
    ana.add_argument("--graph", choices=dataset_names())
    ana.add_argument(
        "--index", type=int, default=0,
        help="with --trace: variant index within the enumeration",
    )
    ana.add_argument(
        "--json", metavar="OUT",
        help="also write the findings report as JSON ('-' for stdout)",
    )
    ana.add_argument(
        "--rules", action="store_true",
        help="print the rule catalog and exit",
    )

    serve = sub.add_parser(
        "serve",
        help="run the always-on style-advisor HTTP service (docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 = pick a free port, printed on boot)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=16, metavar="N",
        help="admission-queue bound; excess requests get HTTP 429",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent sweep worker processes",
    )
    serve.add_argument(
        "--deadline", type=float, default=60.0, metavar="SECONDS",
        help="per-request wall-clock deadline",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive executor failures that trip the circuit breaker",
    )
    serve.add_argument(
        "--breaker-reset", type=float, default=30.0, metavar="SECONDS",
        help="cool-down before the open breaker admits a probe request",
    )
    serve.add_argument(
        "--no-verify", action="store_true",
        help="skip kernel-vs-reference verification in sweeps",
    )
    serve.add_argument(
        "--no-trace-cache", action="store_true",
        help="bypass the persistent semantic-trace store",
    )
    serve.add_argument(
        "--no-predict", action="store_true",
        help="never answer cold misses from the style predictor; every "
             "miss runs a real sweep",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect or garbage-collect the persistent trace store",
    )
    cache.add_argument(
        "action", choices=("stats", "gc", "verify", "export"),
        help="stats: summarize the store; gc: drop stale entries "
             "(kernel code changed) and the quarantine; verify: fully "
             "decode every entry, quarantining the corrupt ones; "
             "export: mine the store into a predictor training set "
             "(CSV/JSONL)",
    )
    cache.add_argument(
        "--dir", metavar="PATH", default=None,
        help="trace-store directory (default: $REPRO_TRACE_CACHE, else "
             "~/.cache/repro/traces)",
    )
    cache.add_argument(
        "--all", action="store_true",
        help="with gc: clear the whole store, not just stale entries",
    )
    cache.add_argument(
        "--format", choices=("csv", "jsonl"), default="csv",
        help="with export: output format (default: csv)",
    )
    cache.add_argument(
        "--out", metavar="PATH", default=None,
        help="with export: write to PATH instead of stdout",
    )
    cache.add_argument(
        "--results", metavar="PATH", action="append", default=None,
        help="with export: also mine a saved StudyResults file "
             "(repeatable)",
    )
    cache.add_argument(
        "--no-features", action="store_true",
        help="with export: omit the feature columns (compact view: "
             "identity columns plus measured seconds only)",
    )

    pred = sub.add_parser(
        "predictor",
        help="train or inspect the learned style-performance model",
    )
    pred_sub = pred.add_subparsers(dest="pred_action", required=True)
    train = pred_sub.add_parser(
        "train",
        help="fit the boosted-stumps model and save the artifact",
    )
    train.add_argument(
        "--results", metavar="PATH", action="append", default=None,
        help="mine a saved StudyResults file (repeatable)",
    )
    train.add_argument(
        "--from-store", action="store_true",
        help="mine the persistent trace store "
             "(free rows: stored traces are re-timed, never re-executed)",
    )
    train.add_argument(
        "--algorithm", choices=[a.value for a in Algorithm],
        help="without --results/--from-store: restrict the training sweep",
    )
    train.add_argument(
        "--model", choices=[m.value for m in Model],
        help="without --results/--from-store: restrict the training sweep",
    )
    train.add_argument("--rounds", type=int, default=300, metavar="N",
                       help="boosting rounds (default: 300)")
    train.add_argument("--seed", type=int, default=0, metavar="N",
                       help="training seed (default: 0)")
    train.add_argument(
        "--out", metavar="PATH", default=None,
        help="artifact path (default: the sweep cache's "
             "predictor/model-v1.json)",
    )
    info = pred_sub.add_parser("info", help="print artifact metadata")
    info.add_argument(
        "--path", metavar="PATH", default=None,
        help="artifact to inspect (default: $REPRO_PREDICTOR, else the "
             "default artifact path)",
    )
    return parser


def _add_workers_flag(sub) -> None:
    sub.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the sweep "
             "(default: $REPRO_SWEEP_WORKERS or all cores; 1 = serial)",
    )
    sub.add_argument(
        "--block-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any (algorithm, graph) block that runs longer "
             "than this (default: $REPRO_BLOCK_TIMEOUT, else no timeout)",
    )
    sub.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="worker retries per failed block before the in-process "
             "fallback and quarantine (default: 2)",
    )
    sub.add_argument(
        "--resume", action="store_true",
        help="skip blocks already checkpointed by an interrupted run of "
             "the identical sweep",
    )
    stealing = sub.add_mutually_exclusive_group()
    stealing.add_argument(
        "--work-stealing", dest="work_stealing", action="store_true",
        default=None,
        help="pull fine semantic shards from a shared queue when workers "
             "outnumber blocks (default: $REPRO_WORK_STEALING, else on)",
    )
    stealing.add_argument(
        "--no-work-stealing", dest="work_stealing", action="store_false",
        help="statically assign shards, one worker process per shard",
    )
    sub.add_argument(
        "--no-trace-cache", action="store_true",
        help="bypass the persistent semantic-trace store and re-execute "
             "every kernel (see `cache` for inspecting the store)",
    )


def _add_results_flags(sub) -> None:
    _add_workers_flag(sub)
    sub.add_argument(
        "--results", metavar="PATH", default=None,
        help="results file to use: loaded if present, otherwise the sweep "
             "runs once and is saved there",
    )
    sub.add_argument(
        "--no-cache", action="store_true",
        help="bypass the content-addressed sweep cache and re-run",
    )


def _cmd_datasets(args) -> int:
    from ..bench.report import render_table4, render_table5

    graphs = load_all(args.scale)
    props = {name: analyze(g) for name, g in graphs.items()}
    print(render_table4(props))
    print()
    print(render_table5(props))
    return 0


def _cmd_specs(args) -> int:
    algorithms = (
        [Algorithm(args.algorithm)] if args.algorithm else list(Algorithm)
    )
    models = [Model(args.model)] if args.model else list(Model)
    total = 0
    for model in models:
        for alg in algorithms:
            specs = enumerate_specs(alg, model)
            total += len(specs)
            print(f"{model.value:<8} {alg.value:<6} {len(specs):>5} variants")
            if args.list:
                for i, spec in enumerate(specs):
                    print(f"  [{i:>4}] {spec.label()}")
    print(f"total: {total}")
    return 0


def _cmd_run(args) -> int:
    alg = Algorithm(args.algorithm)
    model = Model(args.model)
    specs = enumerate_specs(alg, model)
    if not 0 <= args.index < len(specs):
        print(
            f"error: index {args.index} out of range (0..{len(specs) - 1})",
            file=sys.stderr,
        )
        return 2
    spec = specs[args.index]
    graph = load_dataset(args.graph, args.scale)
    device = get_device(args.device)
    if spec.model.is_gpu != (device.name in ("RTX 3090", "Titan V")):
        print("error: model/device mismatch (CUDA needs a GPU)", file=sys.stderr)
        return 2
    result = Launcher().run(spec, graph, device)
    print(f"program:    {spec.label()}")
    print(f"input:      {graph.name} ({graph.n_vertices:,} vertices, {graph.n_edges:,} edges)")
    print(f"device:     {result.device}")
    print(f"verified:   {result.verified}")
    print(f"iterations: {result.iterations}")
    print(f"time:       {result.seconds * 1e3:.3f} ms (simulated)")
    print(f"throughput: {result.throughput_ges:.4f} GES")
    return 0


def _supervision_kwargs(args) -> dict:
    """The supervision options every sweep-running command shares."""
    kwargs = dict(
        workers=args.workers,
        block_timeout=args.block_timeout,
        resume=args.resume,
        work_stealing=args.work_stealing,
    )
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    return kwargs


def _report_failures(results) -> None:
    """Print the failure manifest summary to stderr (never stdout — the
    CSV/tables there must stay machine-readable)."""
    if results.failures:
        print(results.failure_summary(), file=sys.stderr)


def _cmd_sweep(args) -> int:
    from ..bench.harness import PredictSettings, SweepConfig, run_sweep
    from ..bench.parallel import run_sweep_parallel, stderr_progress

    config = SweepConfig(
        scale=args.scale,
        models=(Model(args.model),) if args.model else tuple(Model),
        algorithms=(Algorithm(args.algorithm),) if args.algorithm else tuple(Algorithm),
        trace_cache=not args.no_trace_cache,
    )
    if args.predict:
        from dataclasses import replace

        config = replace(
            config,
            predict=PredictSettings(
                top_k=args.top_k,
                audit_frac=args.audit_frac,
                audit_seed=args.audit_seed,
                max_groups=args.max_groups,
                model_path=args.predictor,
            ),
        )
        # The pruned sweep executes a handful of kernels per block, so
        # the multi-process machinery would cost more than it saves.
        results = run_sweep(config)
        if results.prediction is not None:
            print(results.prediction.render(), file=sys.stderr)
    else:
        results = run_sweep_parallel(
            config, progress=stderr_progress, **_supervision_kwargs(args)
        )
    print(
        "model,algorithm,variant,graph,device,seconds,throughput_ges,"
        "iterations,predicted"
    )
    for run in results.runs:
        print(
            f"{run.spec.model.value},{run.spec.algorithm.value},"
            f"{run.spec.label()},{run.graph},{run.device},"
            f"{run.seconds:.6e},{run.throughput_ges:.6f},{run.iterations},"
            f"{int(run.predicted)}"
        )
    _report_failures(results)
    return 0


def _sweep_for_reports(args):
    """The full-grid sweep behind tables/figures, via the result cache.

    ``--results PATH`` pins an explicit file (loaded if present, created
    otherwise); ``--no-cache`` forces a fresh run; the default is the
    content-addressed cache, so the sweep runs at most once per
    (configuration, simulator source) pair no matter how many tables and
    figures are regenerated.
    """
    from pathlib import Path

    from ..bench.harness import SweepConfig
    from ..bench.parallel import run_sweep_parallel, stderr_progress
    from ..bench.storage import cached_sweep, load_results, save_results

    config = SweepConfig(
        scale=args.scale, trace_cache=not args.no_trace_cache
    )

    def run(cfg):
        return run_sweep_parallel(
            cfg, progress=stderr_progress, **_supervision_kwargs(args)
        )

    if args.results:
        path = Path(args.results)
        if path.exists():
            results = load_results(path)
        else:
            results = run(config)
            save_results(results, path, scale=args.scale)
    elif args.no_cache:
        results = run(config)
    else:
        results = cached_sweep(config, runner=run)
    _report_failures(results)
    return results


def _cmd_table(args) -> int:
    from ..bench import report

    if args.id == 1:
        print(report.render_table1())
    elif args.id == 2:
        print(report.render_table2())
    elif args.id == 3:
        print(report.render_table3())
    elif args.id in (4, 5):
        graphs = load_all(args.scale)
        props = {name: analyze(g) for name, g in graphs.items()}
        render = report.render_table4 if args.id == 4 else report.render_table5
        print(render(props))
    else:  # table 6
        results = _sweep_for_reports(args)
        print(report.render_table6(results))
    return 0


def _cmd_figure(args) -> int:
    from ..bench import report

    fid = str(args.id)
    results = _sweep_for_reports(args)
    if fid == "1":
        print(report.render_ratio_figure(results, "fig1-3090"))
        print()
        print(report.render_ratio_figure(results, "fig1-titanv"))
    elif fid == "2":
        print(report.render_ratio_figure(results, "fig2-cuda"))
        print()
        print(report.render_ratio_figure(results, "fig2-cpu"))
    elif fid in ("3", "4"):
        dup = Dup.DUP if fid == "3" else Dup.NODUP
        for model in Model:
            print(report.render_driver_figure(results, dup, model))
            print()
    elif fid in ("5", "6", "7"):
        for suffix in ("cuda", "omp", "cpp"):
            print(report.render_ratio_figure(results, f"fig{fid}-{suffix}"))
            print()
    elif fid == "8":
        print(report.render_ratio_figure(results, "fig8"))
    elif fid == "9":
        for gname in ("USA-road-d.NY", "soc-LiveJournal1"):
            print(
                report.render_throughput_figure(
                    results, "granularity",
                    title=f"Figure 9: granularity throughputs on {gname} (RTX 3090)",
                    models=[Model.CUDA], graphs=[gname], devices=["RTX 3090"],
                )
            )
            print()
    elif fid == "10":
        for alg in (Algorithm.PR, Algorithm.TC):
            print(
                report.render_throughput_figure(
                    results, "gpu_reduction",
                    title=f"Figure 10: GPU reduction styles ({alg.value})",
                    models=[Model.CUDA], algorithms=[alg],
                )
            )
            print()
    elif fid == "11":
        for alg in (Algorithm.PR, Algorithm.TC):
            print(
                report.render_throughput_figure(
                    results, "cpu_reduction",
                    title=f"Figure 11: CPU reduction styles ({alg.value})",
                    models=[Model.OPENMP, Model.CPP_THREADS], algorithms=[alg],
                )
            )
            print()
    elif fid == "12":
        print(report.render_ratio_figure(results, "fig12"))
    elif fid == "13":
        print(report.render_ratio_figure(results, "fig13"))
    elif fid == "14":
        print(report.render_figure14(results))
    elif fid == "15":
        print(report.render_figure15(results))
    elif fid == "16":
        print(report.render_figure16(results))
    else:
        print(f"error: unknown figure {fid!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_advise(args) -> int:
    from ..bench.advisor import advise
    from ..graph.io import load_graph

    if args.file:
        graph = load_graph(args.file)
    elif args.graph:
        graph = load_dataset(args.graph, args.scale)
    else:
        print("error: pass --graph or --file", file=sys.stderr)
        return 2
    print(advise(graph).render())
    return 0


def _cmd_convergence(args) -> int:
    from ..bench.convergence import collect_convergence, render_convergence

    graphs = load_all(args.scale)
    algorithms = (
        (Algorithm(args.algorithm),) if args.algorithm else tuple(Algorithm)
    )
    records = collect_convergence(graphs, algorithms=algorithms)
    print(render_convergence(records))
    return 0


def _cmd_trace(args) -> int:
    from ..graph.datasets import load_dataset as _load
    from ..machine.inspect import render_trace, trace_to_csv

    alg = Algorithm(args.algorithm)
    model = Model(args.model)
    specs = enumerate_specs(alg, model)
    if not 0 <= args.index < len(specs):
        print(f"error: index out of range (0..{len(specs) - 1})", file=sys.stderr)
        return 2
    spec = specs[args.index]
    graph = load_dataset(args.graph, args.scale)
    launcher = Launcher()
    result = launcher.execute_semantic(spec, graph)
    print(f"program: {spec.label()}")
    if args.csv:
        print(trace_to_csv(result.trace), end="")
    else:
        print(render_trace(result.trace))
    return 0


def _cmd_generate(args) -> int:
    from ..codegen.suite import generate_suite

    bits = {"32": (32,), "64": (64,), "both": (32, 64)}[args.bits]
    manifest = generate_suite(
        args.out_dir,
        models=(Model(args.model),) if args.model else tuple(Model),
        algorithms=(Algorithm(args.algorithm),) if args.algorithm else tuple(Algorithm),
        data_bits=bits,
        limit_per_pair=args.limit,
    )
    print(f"wrote {manifest.count} source files under {manifest.root}")
    print(f"manifest: {manifest.root / 'MANIFEST.tsv'}")
    print("build the CPU variants with: make -C", manifest.root)
    return 0


def _cmd_analyze(args) -> int:
    from ..analysis import rule_catalog
    from ..analysis.findings import Report

    if args.rules:
        for rule, desc in rule_catalog().items():
            print(f"{rule:<18} {desc}")
        return 0
    if not args.suite and not args.trace:
        print("error: pass --suite DIR and/or --trace", file=sys.stderr)
        return 2
    if args.ir and not args.suite:
        print("error: --ir needs --suite DIR", file=sys.stderr)
        return 2

    report: Optional[Report] = None
    if args.suite:
        from ..analysis import lint_suite

        report = lint_suite(
            args.suite, strict=args.strict, ir=args.ir, jobs=args.jobs
        )
    if args.trace:
        if not (args.algorithm and args.model and args.graph):
            print(
                "error: --trace needs --algorithm, --model and --graph",
                file=sys.stderr,
            )
            return 2
        from ..analysis.sanitizer import sanitize_trace

        alg = Algorithm(args.algorithm)
        model = Model(args.model)
        specs = enumerate_specs(alg, model)
        if not 0 <= args.index < len(specs):
            print(
                f"error: index out of range (0..{len(specs) - 1})",
                file=sys.stderr,
            )
            return 2
        spec = specs[args.index]
        graph = load_dataset(args.graph, args.scale)
        result = Launcher().execute_semantic(spec, graph)
        trace_report = sanitize_trace(spec, result.trace)
        report = (
            trace_report
            if report is None
            else report.merged(trace_report, title="analysis")
        )

    assert report is not None
    if args.json:
        payload = report.to_json()
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)
    if args.json != "-":
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_guidelines(args) -> int:
    from ..bench.guidelines import derive_guidelines

    results = _sweep_for_reports(args)
    for guideline in derive_guidelines(results):
        print(guideline.render())
    return 0


def _cmd_fuzz(args) -> int:
    from ..robustness.fuzz import (
        load_manifest,
        replay_entry,
        run_fuzz,
        run_self_test,
        write_manifest,
    )

    if args.replay:
        manifest = load_manifest(args.replay)
        entries = [e for e in manifest["entries"] if e["status"] != "ok"]
        if not entries:
            print("nothing to replay: manifest has no non-ok entries")
            return 0
        not_reproduced = 0
        for entry in entries:
            outcome = replay_entry(entry)
            label = entry.get("planted") or entry["case"]["shape"]
            verdict = (
                "reproduced"
                if outcome["reproduced"]
                else "DID NOT REPRODUCE"
            )
            print(
                f"[{entry['status']}] case {entry['case']['index']} "
                f"({label}): {verdict} — {outcome['message']}"
            )
            not_reproduced += 0 if outcome["reproduced"] else 1
        return 1 if not_reproduced else 0

    reports = []
    exit_code = 0
    if args.smoke or args.self_test:
        self_test = run_self_test(seed=args.seed)
        reports.append(self_test)
        print(self_test.render_text())
        if not self_test.planted_ok:
            exit_code = 1
    if not args.self_test:
        cases = args.cases if args.cases is not None else (60 if args.smoke else 200)
        report = run_fuzz(cases=cases, seed=args.seed)
        reports.append(report)
        print(report.render_text())
        if report.escapes:
            exit_code = 1
    if args.manifest:
        path = write_manifest(args.manifest, *reports)
        print(f"manifest written to {path}")
    return exit_code


def _cmd_serve(args) -> int:
    import asyncio

    from ..serve.app import ServeConfig, serve_main

    config = ServeConfig(
        host=args.host,
        port=args.port,
        scale=args.scale,
        max_inflight=args.max_inflight,
        max_workers=args.workers,
        deadline_seconds=args.deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset,
        verify=not args.no_verify,
        trace_cache=not args.no_trace_cache,
        predict=not args.no_predict,
    )
    asyncio.run(serve_main(config))
    return 0


def _cmd_cache(args) -> int:
    import os

    from ..bench.tracestore import TRACE_CACHE_ENV, TraceStore, default_trace_dir

    directory = args.dir
    if directory is None:
        env = os.environ.get(TRACE_CACHE_ENV)
        directory = env if env and env.strip() not in ("", "0") else None
    store = TraceStore(directory if directory else default_trace_dir())
    if args.action == "stats":
        print(store.stats().render())
        return 0
    if args.action == "gc":
        removed, reclaimed = store.gc(everything=args.all)
        print(f"removed {removed} entries ({reclaimed / 1e6:.2f} MB)")
        return 0
    if args.action == "export":
        from ..bench.predictor import (
            export_training_set,
            mine_results,
            mine_trace_store,
        )
        from ..bench.storage import load_results

        ts = mine_trace_store(store)
        for path in args.results or ():
            ts.extend(mine_results(load_results(path)))
        include = not args.no_features
        if args.out:
            with open(args.out, "w", newline="") as fh:
                n = export_training_set(
                    ts, fh, fmt=args.format, include_features=include
                )
            print(f"wrote {n} rows to {args.out}", file=sys.stderr)
        else:
            n = export_training_set(
                ts, sys.stdout, fmt=args.format, include_features=include
            )
        for reason, count in sorted(ts.skipped.items()):
            print(f"skipped {count} rows: {reason}", file=sys.stderr)
        return 0
    ok, bad = store.verify_entries()
    print(f"verified {ok} entries, quarantined {len(bad)}")
    for path, reason in bad:
        print(f"  {path}: {reason}")
    return 1 if bad else 0


def _cmd_predictor(args) -> int:
    from ..bench.predictor import (
        PredictorArtifactError,
        StylePredictor,
        TrainingSet,
        default_predictor_path,
        mine_results,
        mine_trace_store,
    )

    if args.pred_action == "info":
        import os

        from ..bench.predictor import PREDICTOR_ENV

        path = args.path or os.environ.get(PREDICTOR_ENV) or None
        if path in (None, "", "0"):
            path = default_predictor_path()
        try:
            predictor = StylePredictor.load(path)
        except FileNotFoundError:
            print(f"error: no model artifact at {path}", file=sys.stderr)
            return 1
        except PredictorArtifactError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"artifact:  {path}")
        print(f"cells:     {len(predictor.cells)} (algorithm, device) pairs")
        for key in sorted(predictor.training):
            print(f"{key + ':':<11}{predictor.training[key]}")
        return 0

    # predictor train
    from ..bench.storage import load_results

    ts = TrainingSet.empty()
    if args.from_store:
        from ..bench.tracestore import resolve_trace_store

        store = resolve_trace_store(True)
        if store is None:
            print("error: trace store is disabled", file=sys.stderr)
            return 2
        ts.extend(mine_trace_store(store))
    for path in args.results or ():
        ts.extend(mine_results(load_results(path)))
    if not args.from_store and not args.results:
        # No sources named: run a (filtered) sweep and mine its runs.
        from ..bench.harness import SweepConfig, run_sweep

        config = SweepConfig(
            scale=args.scale,
            models=(Model(args.model),) if args.model else tuple(Model),
            algorithms=(
                (Algorithm(args.algorithm),)
                if args.algorithm
                else tuple(Algorithm)
            ),
        )
        print("mining a fresh sweep (no --results / --from-store given)",
              file=sys.stderr)
        ts.extend(mine_results(run_sweep(config)))
    if len(ts) == 0:
        print("error: training set is empty — nothing to fit", file=sys.stderr)
        return 1
    predictor = StylePredictor.train(ts, seed=args.seed, rounds=args.rounds)
    path = predictor.save(args.out)
    print(f"trained on {len(ts)} rows "
          f"(mae {predictor.training['mae_log_seconds']:.3f} log-seconds)")
    print(f"artifact: {path}")
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "specs": _cmd_specs,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "guidelines": _cmd_guidelines,
    "generate": _cmd_generate,
    "trace": _cmd_trace,
    "convergence": _cmd_convergence,
    "advise": _cmd_advise,
    "analyze": _cmd_analyze,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
    "predictor": _cmd_predictor,
}


def main(argv: Optional[list] = None) -> int:
    from concurrent.futures.process import BrokenProcessPool

    from ..runtime.budget import BudgetExceeded

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenProcessPool:
        print(
            "error: a sweep worker process died unexpectedly (out of "
            "memory, or killed); re-run with fewer --workers, or "
            "--workers 1 to run serially",
            file=sys.stderr,
        )
        return 1
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: exit quietly.
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os.dup2(os.open(os.devnull, os.O_WRONLY), 2)
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
