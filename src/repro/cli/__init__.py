"""Command-line interface (``indigo2py`` / ``python -m repro``)."""

from .main import build_parser, main

__all__ = ["main", "build_parser"]
