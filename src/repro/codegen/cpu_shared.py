"""Shared snippets of the two CPU generators (OpenMP and C++ threads)."""

from __future__ import annotations

from ..styles.axes import Algorithm
from .common import CodeWriter

__all__ = [
    "CPU_PREAMBLE",
    "CPU_GRAPH",
    "cost_expr",
    "hash_pri",
    "emit_serial_reference",
    "emit_verification_main",
]

CPU_PREAMBLE = r"""
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <climits>
#include <cmath>
#include <vector>
#include <algorithm>
"""

CPU_GRAPH = r"""
// ---------------------------------------------------------------------
// Graph loading: whitespace edge list "u v [w]", 0-indexed; undirected
// edges stored as two directed edges (CSR and COO).
// ---------------------------------------------------------------------
struct Graph {
  int nodes = 0;
  int edges = 0;
  std::vector<int> nbr_idx;
  std::vector<int> nbr_list;
  std::vector<int> e_weight;
  std::vector<int> src_list;
  std::vector<int> dst_list;
  int degree(int v) const { return nbr_idx[v + 1] - nbr_idx[v]; }
};

static Graph read_graph(const char* path) {
  FILE* fh = fopen(path, "r");
  if (!fh) { fprintf(stderr, "cannot open %s\n", path); exit(1); }
  std::vector<int> us, vs, ws;
  char line[256];
  int maxv = -1;
  while (fgets(line, sizeof line, fh)) {
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    int u, v, w = 1;
    int got = sscanf(line, "%d %d %d", &u, &v, &w);
    if (got < 2 || u == v) continue;
    us.push_back(u); vs.push_back(v); ws.push_back(w);
    us.push_back(v); vs.push_back(u); ws.push_back(w);
    maxv = std::max(maxv, std::max(u, v));
  }
  fclose(fh);
  Graph g;
  g.nodes = maxv + 1;
  g.edges = (int)us.size();
  g.nbr_idx.assign(g.nodes + 1, 0);
  for (int e = 0; e < g.edges; e++) g.nbr_idx[us[e] + 1]++;
  for (int v = 0; v < g.nodes; v++) g.nbr_idx[v + 1] += g.nbr_idx[v];
  g.nbr_list.resize(g.edges);
  g.e_weight.resize(g.edges);
  g.src_list.resize(g.edges);
  g.dst_list.resize(g.edges);
  std::vector<int> cursor(g.nbr_idx.begin(), g.nbr_idx.end() - 1);
  for (int e = 0; e < g.edges; e++) {
    int slot = cursor[us[e]]++;
    g.nbr_list[slot] = vs[e];
    g.e_weight[slot] = ws[e];
  }
  for (int v = 0; v < g.nodes; v++)
    for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {
      g.src_list[i] = v;
      g.dst_list[i] = g.nbr_list[i];
    }
  return g;
}
"""


def cost_expr(alg: Algorithm, idx: str) -> str:
    """The per-edge relaxation cost (Bellman-Ford family)."""
    if alg is Algorithm.SSSP:
        return f"g.e_weight[{idx}]"
    if alg is Algorithm.BFS:
        return "1"
    return "0"  # CC: labels propagate unchanged


def hash_pri() -> str:
    return r"""
static inline unsigned long long hash_pri(int v) {
  unsigned long long x = (unsigned long long)v;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
"""


def emit_serial_reference(w: CodeWriter, alg: Algorithm) -> None:
    """Section 4.1's serial verifier, emitted into each file."""
    if alg in (Algorithm.BFS, Algorithm.SSSP, Algorithm.CC):
        source_based = "1" if alg is not Algorithm.CC else "0"
        cost = cost_expr(alg, "i")
        w.line(f"#define SOURCE_BASED {source_based}")
        w.raw(
            f"""
static std::vector<val_t> serial_reference(const Graph& g, int source) {{
  std::vector<val_t> val(g.nodes, VAL_MAX);
  if (SOURCE_BASED) val[source] = 0;
  else for (int v = 0; v < g.nodes; v++) val[v] = v;
  bool changed = true;
  while (changed) {{
    changed = false;
    for (int v = 0; v < g.nodes; v++) {{
      if (val[v] == VAL_MAX) continue;
      for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {{
        long long cand = (long long)val[v] + {cost};
        if (cand < (long long)val[g.nbr_list[i]]) {{
          val[g.nbr_list[i]] = (val_t)cand;
          changed = true;
        }}
      }}
    }}
  }}
  return val;
}}
"""
        )
    elif alg is Algorithm.MIS:
        w.raw(
            """
static std::vector<signed char> serial_reference(const Graph& g) {
  std::vector<int> order(g.nodes);
  for (int v = 0; v < g.nodes; v++) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return hash_pri(a) > hash_pri(b); });
  std::vector<signed char> status(g.nodes, 0);
  for (int v : order) {
    if (status[v] != 0) continue;
    status[v] = 1;
    for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)
      if (status[g.nbr_list[i]] == 0) status[g.nbr_list[i]] = 2;
  }
  return status;
}
"""
        )
    elif alg is Algorithm.PR:
        w.raw(
            """
static std::vector<rank_t> serial_reference(const Graph& g) {
  std::vector<rank_t> rank(g.nodes, (rank_t)1 / g.nodes), next(g.nodes);
  for (int iter = 0; iter < 10000; iter++) {
    rank_t base = (1 - DAMPING) / g.nodes, err = 0;
    for (int v = 0; v < g.nodes; v++) next[v] = base;
    for (int v = 0; v < g.nodes; v++) {
      int deg = g.degree(v);
      if (!deg) continue;
      rank_t c = DAMPING * rank[v] / deg;
      for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)
        next[g.nbr_list[i]] += c;
    }
    for (int v = 0; v < g.nodes; v++) err += fabs(next[v] - rank[v]);
    rank.swap(next);
    if (err < TOLERANCE) break;
  }
  return rank;
}
"""
        )
    else:  # TC
        w.raw(
            """
static long long serial_reference(const Graph& g) {
  long long total = 0;
  for (int v = 0; v < g.nodes; v++)
    for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {
      const int u = g.nbr_list[i];
      if (u <= v) continue;
      int a = g.nbr_idx[v], b = g.nbr_idx[u];
      while (a < g.nbr_idx[v + 1] && b < g.nbr_idx[u + 1]) {
        const int x = g.nbr_list[a], y = g.nbr_list[b];
        if (x <= v) { a++; continue; }
        if (y <= u) { b++; continue; }
        if (x == y) { total++; a++; b++; }
        else if (x < y) a++;
        else b++;
      }
    }
  return total;
}
"""
        )


def emit_verification_main(w: CodeWriter, alg: Algorithm) -> None:
    """The main() with timing + verification against the serial code."""
    if alg in (Algorithm.BFS, Algorithm.SSSP, Algorithm.CC):
        normalize = (
            """
static val_t normalize(const std::vector<val_t>& labels, int v) {
  val_t x = labels[v];
  while (labels[(int)x] != x) x = labels[(int)x];
  return x;
}
"""
            if alg is Algorithm.CC
            else """
static val_t normalize(const std::vector<val_t>& vals, int v) { return vals[v]; }
"""
        )
        w.raw(normalize)
        w.raw(
            r"""
int main(int argc, char** argv) {
  if (argc < 2) { fprintf(stderr, "usage: %s graph.el [source]\n", argv[0]); return 1; }
  Graph g = read_graph(argv[1]);
  const int source = argc > 2 ? atoi(argv[2]) : 0;
  printf("input: %d nodes, %d directed edges\n", g.nodes, g.edges);
  std::vector<val_t> val(g.nodes);
  compute(g, val, source);
  std::vector<val_t> expected = serial_reference(g, source);
  for (int v = 0; v < g.nodes; v++)
    if (normalize(val, v) != normalize(expected, v)) {
      fprintf(stderr, "MISMATCH at vertex %d\n", v);
      return 1;
    }
  printf("verified OK\n");
  return 0;
}
"""
        )
    elif alg is Algorithm.MIS:
        w.raw(
            r"""
int main(int argc, char** argv) {
  if (argc < 2) { fprintf(stderr, "usage: %s graph.el\n", argv[0]); return 1; }
  Graph g = read_graph(argv[1]);
  printf("input: %d nodes, %d directed edges\n", g.nodes, g.edges);
  std::vector<signed char> status(g.nodes, 0);
  mis(g, status);
  std::vector<signed char> expected = serial_reference(g);
  for (int v = 0; v < g.nodes; v++)
    if ((status[v] == 1) != (expected[v] == 1)) {
      fprintf(stderr, "MISMATCH at vertex %d\n", v);
      return 1;
    }
  printf("verified OK\n");
  return 0;
}
"""
        )
    elif alg is Algorithm.PR:
        w.raw(
            r"""
int main(int argc, char** argv) {
  if (argc < 2) { fprintf(stderr, "usage: %s graph.el\n", argv[0]); return 1; }
  Graph g = read_graph(argv[1]);
  printf("input: %d nodes, %d directed edges\n", g.nodes, g.edges);
  std::vector<rank_t> rank(g.nodes, (rank_t)1 / g.nodes);
  pagerank(g, rank);
  std::vector<rank_t> expected = serial_reference(g);
  for (int v = 0; v < g.nodes; v++)
    if (fabs(rank[v] - expected[v]) > (rank_t)1e-4) {
      fprintf(stderr, "MISMATCH at vertex %d\n", v);
      return 1;
    }
  printf("verified OK\n");
  return 0;
}
"""
        )
    else:
        w.raw(
            r"""
int main(int argc, char** argv) {
  if (argc < 2) { fprintf(stderr, "usage: %s graph.el\n", argv[0]); return 1; }
  Graph g = read_graph(argv[1]);
  printf("input: %d nodes, %d directed edges\n", g.nodes, g.edges);
  const long long total = triangle_count(g);
  const long long expected = serial_reference(g);
  printf("triangles: %lld\n", total);
  if (total != expected) {
    fprintf(stderr, "MISMATCH: expected %lld\n", expected);
    return 1;
  }
  printf("verified OK\n");
  return 0;
}
"""
        )
