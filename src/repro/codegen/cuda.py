"""CUDA source generation: one complete ``.cu`` file per StyleSpec.

The emitted constructs track the paper's listings:

* Listing 1  — vertex vs. edge indexing (``gidx``),
* Listing 2/3 — worklists with and without the ``atomicMax`` stamp,
* Listing 4  — push vs. pull relaxation,
* Listing 5  — ``atomicMin`` vs. read + conditional write,
* Listing 6  — double-buffered (deterministic) arrays,
* Listing 7  — persistent grid-stride loops,
* Listing 8  — thread / warp / block neighbor loops,
* Listing 9  — classic atomics vs. default ``cuda::atomic``,
* Listing 10 — global-add / block-add / reduction-add.

Every file is self-contained: it loads an edge-list graph, builds CSR/COO
on the host, runs the styled kernel to a fixed point, and verifies against
a simple serial implementation (Section 4.1's discipline).
"""

from __future__ import annotations

from ..styles.axes import (
    Algorithm,
    AtomicFlavor,
    Determinism,
    Driver,
    Dup,
    Flow,
    GpuReduction,
    Granularity,
    Iteration,
    Persistence,
    Update,
)
from ..styles.spec import StyleSpec
from .common import ALGORITHM_TITLES, CodeWriter

__all__ = ["generate_cuda"]

_PREAMBLE = r"""
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <climits>
#include <vector>
#include <algorithm>
#include <cuda_runtime.h>
"""

_HOST_GRAPH = r"""
// ---------------------------------------------------------------------
// Host-side graph loading: whitespace edge list "u v [w]", 0-indexed.
// Undirected edges are stored as two directed edges (CSR and COO).
// ---------------------------------------------------------------------
struct Graph {
  int nodes = 0;
  int edges = 0;
  std::vector<int> nbr_idx;   // CSR row offsets  (nodes + 1)
  std::vector<int> nbr_list;  // CSR neighbors    (edges)
  std::vector<int> e_weight;  // per-edge weights (edges)
  std::vector<int> src_list;  // COO sources      (edges)
  std::vector<int> dst_list;  // COO destinations (edges)
};

static Graph read_graph(const char* path) {
  FILE* fh = fopen(path, "r");
  if (!fh) { fprintf(stderr, "cannot open %s\n", path); exit(1); }
  std::vector<int> us, vs, ws;
  char line[256];
  int maxv = -1;
  while (fgets(line, sizeof line, fh)) {
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    int u, v, w = 1;
    int got = sscanf(line, "%d %d %d", &u, &v, &w);
    if (got < 2 || u == v) continue;
    us.push_back(u); vs.push_back(v); ws.push_back(w);
    us.push_back(v); vs.push_back(u); ws.push_back(w);
    maxv = std::max(maxv, std::max(u, v));
  }
  fclose(fh);
  Graph g;
  g.nodes = maxv + 1;
  g.edges = (int)us.size();
  g.nbr_idx.assign(g.nodes + 1, 0);
  for (int e = 0; e < g.edges; e++) g.nbr_idx[us[e] + 1]++;
  for (int v = 0; v < g.nodes; v++) g.nbr_idx[v + 1] += g.nbr_idx[v];
  g.nbr_list.resize(g.edges);
  g.e_weight.resize(g.edges);
  g.src_list.resize(g.edges);
  g.dst_list.resize(g.edges);
  std::vector<int> cursor(g.nbr_idx.begin(), g.nbr_idx.end() - 1);
  for (int e = 0; e < g.edges; e++) {
    int slot = cursor[us[e]]++;
    g.nbr_list[slot] = vs[e];
    g.e_weight[slot] = ws[e];
  }
  for (int v = 0; v < g.nodes; v++)
    for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {
      g.src_list[i] = v;
      g.dst_list[i] = g.nbr_list[i];
    }
  return g;
}
"""


def _relax_cost_expr(alg: Algorithm) -> str:
    if alg is Algorithm.SSSP:
        return "e_weight[i]"
    if alg is Algorithm.BFS:
        return "1"
    return "0"  # CC propagates labels


def _relax_cost_expr_edge(alg: Algorithm) -> str:
    if alg is Algorithm.SSSP:
        return "e_weight[e]"
    if alg is Algorithm.BFS:
        return "1"
    return "0"


def _serial_reference(alg: Algorithm) -> str:
    if alg in (Algorithm.BFS, Algorithm.SSSP, Algorithm.CC):
        return r"""
static std::vector<val_t> serial_reference(const Graph& g, int source) {
  std::vector<val_t> val(g.nodes, VAL_MAX);
  if (SOURCE_BASED) val[source] = 0;
  else for (int v = 0; v < g.nodes; v++) val[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < g.nodes; v++) {
      if (val[v] == VAL_MAX) continue;
      for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {
        long long cand = (long long)val[v] + EDGE_COST_SERIAL;
        if (cand < (long long)val[g.nbr_list[i]]) {
          val[g.nbr_list[i]] = (val_t)cand;
          changed = true;
        }
      }
    }
  }
  return val;
}
"""
    if alg is Algorithm.MIS:
        return r"""
static std::vector<signed char> serial_reference(const Graph& g, int) {
  std::vector<int> order(g.nodes);
  for (int v = 0; v < g.nodes; v++) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return hash_pri(a) > hash_pri(b); });
  std::vector<signed char> status(g.nodes, 0);
  for (int v : order) {
    if (status[v] != 0) continue;
    status[v] = 1;
    for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)
      if (status[g.nbr_list[i]] == 0) status[g.nbr_list[i]] = 2;
  }
  return status;
}
"""
    if alg is Algorithm.PR:
        return r"""
static std::vector<rank_t> serial_reference(const Graph& g, int) {
  std::vector<rank_t> rank(g.nodes, (rank_t)1 / g.nodes), next(g.nodes);
  for (int iter = 0; iter < 10000; iter++) {
    rank_t base = (1 - DAMPING) / g.nodes, err = 0;
    for (int v = 0; v < g.nodes; v++) next[v] = base;
    for (int v = 0; v < g.nodes; v++) {
      int deg = g.nbr_idx[v + 1] - g.nbr_idx[v];
      if (!deg) continue;
      rank_t c = DAMPING * rank[v] / deg;
      for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)
        next[g.nbr_list[i]] += c;
    }
    for (int v = 0; v < g.nodes; v++) err += fabs(next[v] - rank[v]);
    rank.swap(next);
    if (err < TOLERANCE) break;
  }
  return rank;
}
"""
    return r"""
static long long serial_reference(const Graph& g, int) {
  long long total = 0;
  for (int v = 0; v < g.nodes; v++)
    for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {
      int u = g.nbr_list[i];
      if (u <= v) continue;
      int a = g.nbr_idx[v], b = g.nbr_idx[u];
      while (a < g.nbr_idx[v + 1] && b < g.nbr_idx[u + 1]) {
        int x = g.nbr_list[a], y = g.nbr_list[b];
        if (x <= v) { a++; continue; }
        if (y <= u) { b++; continue; }
        if (x == y) { total++; a++; b++; }
        else if (x < y) a++;
        else b++;
      }
    }
  return total;
}
"""


def _emit_item_header(w: CodeWriter, spec: StyleSpec, count_expr: str) -> None:
    """Listing 1/2/7/8: derive the work-item id from gidx (or the grid
    stride loop), honoring granularity and persistence."""
    gran = spec.granularity
    w.line("const long long gidx = (long long)threadIdx.x + "
           "(long long)blockIdx.x * blockDim.x;")
    if gran is Granularity.THREAD:
        w.line("long long item = gidx;")
    elif gran is Granularity.WARP:
        w.lines("const int lane = threadIdx.x % WS;",
                "long long item = gidx / WS;")
    else:
        w.line("long long item = blockIdx.x;")
    if spec.persistence is Persistence.PERSISTENT:
        stride = {
            Granularity.THREAD: "(long long)gridDim.x * blockDim.x",
            Granularity.WARP: "((long long)gridDim.x * blockDim.x) / WS",
            Granularity.BLOCK: "(long long)gridDim.x",
        }[gran]
        w.open(f"for (; item < {count_expr}; item += {stride})")
    else:
        w.open(f"if (item < {count_expr})")


def _emit_inner_loop(w: CodeWriter, spec: StyleSpec, beg: str, end: str) -> None:
    """Listing 8: the neighbor loop at the chosen granularity."""
    gran = spec.granularity
    if gran is Granularity.THREAD:
        w.open(f"for (int i = {beg}; i < {end}; i++)")
    elif gran is Granularity.WARP:
        w.open(f"for (int i = {beg} + lane; i < {end}; i += WS)")
    else:
        w.open(f"for (int i = {beg} + (int)threadIdx.x; i < {end}; "
               "i += blockDim.x)")


def _atomic_min(spec: StyleSpec, cell: str, value: str) -> str:
    if spec.atomic_flavor is AtomicFlavor.CUDA_ATOMIC:
        return f"{cell}.fetch_min({value});"
    return f"atomicMin(&{cell}, {value});"


def _load(spec: StyleSpec, cell: str) -> str:
    if spec.atomic_flavor is AtomicFlavor.CUDA_ATOMIC:
        return f"{cell}.load()"
    return cell


def _store(spec: StyleSpec, cell: str, value: str) -> str:
    if spec.atomic_flavor is AtomicFlavor.CUDA_ATOMIC:
        return f"{cell}.store({value});"
    return f"{cell} = {value};"


def _val_type(spec: StyleSpec) -> str:
    if spec.atomic_flavor is AtomicFlavor.CUDA_ATOMIC:
        return "cuda::atomic<val_t>"
    return "val_t"


def _emit_relax_kernel(w: CodeWriter, spec: StyleSpec) -> None:
    """The relaxation kernel for BFS / SSSP / CC in the selected style."""
    alg = spec.algorithm
    data = spec.driver is Driver.DATA
    pull = spec.flow is Flow.PULL
    det = spec.determinism is Determinism.DETERMINISTIC
    vt = _val_type(spec)
    read = "val_in" if det else "val"
    write = "val_out" if det else "val"

    params = [
        "const int nodes", "const int edges",
        "const int* __restrict__ nbr_idx",
        "const int* __restrict__ nbr_list",
        "const int* __restrict__ e_weight",
        "const int* __restrict__ src_list",
        "const int* __restrict__ dst_list",
    ]
    if det:
        params += [f"{vt}* val_in", f"{vt}* val_out"]
    else:
        params += [f"{vt}* val"]
    if data:
        params += ["const int* __restrict__ wl", "const int wl_size",
                   "int* wl_next", "int* wl_next_size", "int* stat",
                   "const int itr"]
    params += ["int* changed"]
    w.open(f"__global__ void relax_kernel({', '.join(params)})")

    if spec.iteration is Iteration.VERTEX:
        count = "wl_size" if data else "nodes"
        _emit_item_header(w, spec, count)
        w.line("const int v = " + ("wl[item];" if data else "(int)item;"))
        w.lines("const int beg = nbr_idx[v];",
                "const int end = nbr_idx[v + 1];")
        _emit_inner_loop(w, spec, "beg", "end")
        w.line("const int u = nbr_list[i];")
        if pull:
            w.line(f"const val_t other = {_load(spec, read + '[u]')};")
            w.line("if (other == VAL_MAX) continue;")
            w.line(f"const val_t new_val = other + {_relax_cost_expr(alg)};")
            _emit_update(w, spec, write, "v", push_target=False)
        else:
            w.line(f"const val_t mine = {_load(spec, read + '[v]')};")
            w.line("if (mine == VAL_MAX) break;")
            w.line(f"const val_t new_val = mine + {_relax_cost_expr(alg)};")
            _emit_update(w, spec, write, "u", push_target=True)
        w.close()  # inner loop
        w.close()  # item guard / persistent loop
    else:  # EDGE
        count = "wl_size" if data else "edges"
        _emit_item_header(w, spec, count)
        w.line("const int e = " + ("wl[item];" if data else "(int)item;"))
        if pull:
            w.lines("const int v = src_list[e];", "const int u = dst_list[e];")
        else:
            w.lines("const int v = dst_list[e];", "const int u = src_list[e];")
        w.line(f"const val_t other = {_load(spec, read + '[u]')};")
        w.open("if (other != VAL_MAX)")
        w.line(f"const val_t new_val = other + {_relax_cost_expr_edge(alg)};")
        _emit_update(w, spec, write, "v", push_target=not pull)
        w.close()
        w.close()  # item guard / persistent loop
    w.close()  # kernel


def _emit_update(
    w: CodeWriter, spec: StyleSpec, write: str, target: str, push_target: bool
) -> None:
    """Listing 5 + Listing 3: the conditional update and the worklist push."""
    data = spec.driver is Driver.DATA
    cell = f"{write}[{target}]"
    if spec.update is Update.READ_MODIFY_WRITE:
        w.line(f"const val_t old_val = {_load(spec, cell)};")
        w.open("if (new_val < old_val)")
        w.line(_atomic_min(spec, cell, "new_val"))
    else:
        w.line(f"const val_t old_val = {_load(spec, cell)};")
        w.open("if (new_val < old_val)")
        w.line(_store(spec, cell, "new_val"))
    w.line("*changed = 1;")
    if data:
        _emit_push(w, spec, target)
    w.close()


def _emit_push(w: CodeWriter, spec: StyleSpec, target: str) -> None:
    """Listing 3: populate the next worklist after an improvement.

    Push flow enqueues the improved vertex (vertex items) or its out-edges
    (edge items); pull flow enqueues every neighbor of the improved vertex
    — the "useless items" trade-off of Section 2.4.
    """
    vertex = spec.iteration is Iteration.VERTEX
    pull = spec.flow is Flow.PULL

    def enqueue(expr: str) -> None:
        if spec.dup is Dup.NODUP:
            w.open(f"if (atomicMax(&stat[{expr}], itr) != itr)")
            w.lines("const int slot = atomicAdd(wl_next_size, 1);",
                    f"wl_next[slot] = {expr};")
            w.close()
        else:
            w.lines("const int slot = atomicAdd(wl_next_size, 1);",
                    f"wl_next[slot] = {expr};")

    if vertex and not pull:
        enqueue(target)
    elif vertex and pull:
        w.open(f"for (int k = nbr_idx[{target}]; k < nbr_idx[{target} + 1]; k++)")
        enqueue("nbr_list[k]")
        w.close()
    else:  # edge items (push flow only): enqueue the out-edges
        w.open(f"for (int k = nbr_idx[{target}]; k < nbr_idx[{target} + 1]; k++)")
        enqueue("k")
        w.close()


def _emit_reduction(w: CodeWriter, spec: StyleSpec, value: str, ctr: str) -> None:
    """Listing 10: the three GPU sum-reduction styles."""
    red = spec.gpu_reduction
    if red is GpuReduction.GLOBAL_ADD:
        w.line(f"atomicAdd({ctr}, {value});")
    elif red is GpuReduction.BLOCK_ADD:
        w.lines(
            f"atomicAdd_block(&block_ctr, {value});",
            "__syncthreads();  // block barrier",
            "if (threadIdx.x == 0) atomicAdd(" + ctr + ", block_ctr);",
        )
    else:
        w.lines(
            f"auto warp_val = warp_reduce({value});",
            "__syncthreads();  // block barrier",
            "auto block_val = block_reduce(warp_val);",
            "__syncthreads();  // block barrier",
            "if (threadIdx.x == 0) atomicAdd(" + ctr + ", block_val);",
        )


_WARP_REDUCE = r"""
__device__ inline double warp_reduce(double val) {
  for (int offset = WS / 2; offset > 0; offset /= 2)
    val += __shfl_down_sync(0xffffffff, val, offset);
  return val;
}
__shared__ double shared_partials[32];
__device__ inline double block_reduce(double val) {
  const int lane = threadIdx.x % WS, wid = threadIdx.x / WS;
  if (lane == 0) shared_partials[wid] = val;
  __syncthreads();
  double out = (threadIdx.x < blockDim.x / WS) ? shared_partials[lane] : 0.0;
  if (wid == 0) out = warp_reduce(out);
  return out;
}
"""


def _emit_pr_kernels(w: CodeWriter, spec: StyleSpec) -> None:
    pull = spec.flow is Flow.PULL
    det = spec.determinism is Determinism.DETERMINISTIC
    read = "rank_in" if det else "rank"
    write = "rank_out" if det else "rank"
    if spec.gpu_reduction is GpuReduction.REDUCTION_ADD:
        w.raw(_WARP_REDUCE.replace("double", "rank_t"))
        w.blank()
    if spec.gpu_reduction is GpuReduction.BLOCK_ADD:
        w.line("__device__ rank_t block_ctr;")
        w.blank()
    params = (
        "const int nodes, const int* __restrict__ nbr_idx, "
        "const int* __restrict__ nbr_list, const int* __restrict__ deg, "
        + (
            f"const rank_t* __restrict__ {read}, rank_t* {write}, rank_t* err"
            if det
            else f"rank_t* {read}, rank_t* err"
        )
    )
    w.open(f"__global__ void pr_kernel({params})")
    _emit_item_header(w, spec, "nodes")
    w.line("const int v = (int)item;")
    w.lines("const int beg = nbr_idx[v];", "const int end = nbr_idx[v + 1];")
    if pull:
        w.line("rank_t sum = 0;")
        _emit_inner_loop(w, spec, "beg", "end")
        w.line("const int u = nbr_list[i];")
        w.line(f"sum += {read}[u] / deg[u];")
        w.close()
        w.line("const rank_t new_rank = (1 - DAMPING) / nodes + DAMPING * sum;")
        w.line(f"const rank_t delta = fabs(new_rank - {read}[v]);")
        w.line(f"{write}[v] = new_rank;")
    else:
        w.line(f"const rank_t contrib = DAMPING * {read}[v] / max(deg[v], 1);")
        _emit_inner_loop(w, spec, "beg", "end")
        w.line("atomicAdd(&" + write + "[nbr_list[i]], contrib);")
        w.close()
        w.line(f"const rank_t delta = fabs({write}[v] - {read}[v]);")
    _emit_reduction(w, spec, "delta", "err")
    w.close()  # item guard
    w.close()  # kernel


def _emit_tc_kernel(w: CodeWriter, spec: StyleSpec) -> None:
    if spec.gpu_reduction is GpuReduction.REDUCTION_ADD:
        w.raw(_WARP_REDUCE.replace("double", "long long").replace(" 0.0;", " 0;"))
        w.blank()
    if spec.gpu_reduction is GpuReduction.BLOCK_ADD:
        w.line("__device__ long long block_ctr;")
        w.blank()
    w.open(
        "__global__ void tc_kernel(const int nodes, const int edges, "
        "const int* __restrict__ nbr_idx, const int* __restrict__ nbr_list, "
        "const int* __restrict__ src_list, const int* __restrict__ dst_list, "
        "unsigned long long* ctr)"
    )
    vertex = spec.iteration is Iteration.VERTEX
    _emit_item_header(w, spec, "nodes" if vertex else "edges")
    w.line("long long count = 0;")
    if vertex:
        w.line("const int v = (int)item;")
        w.open("for (int j = nbr_idx[v]; j < nbr_idx[v + 1]; j++)")
        w.lines("const int u = nbr_list[j];", "if (u <= v) continue;")
    else:
        w.lines("const int v = src_list[item];", "const int u = dst_list[item];")
        w.open("if (u > v)")
    # Strip-mined sorted merge over the two forward lists.
    w.raw(
        """
int a = nbr_idx[v], b = nbr_idx[u];
while (a < nbr_idx[v + 1] && b < nbr_idx[u + 1]) {
  const int x = nbr_list[a], y = nbr_list[b];
  if (x <= v) { a++; continue; }
  if (y <= u) { b++; continue; }
  if (x == y) { count++; a++; b++; }
  else if (x < y) a++; else b++;
}
"""
    )
    w.close()  # pair loop / forward guard
    w.open("if (count)")
    _emit_reduction(w, spec, "(unsigned long long)count", "ctr")
    w.close()
    w.close()  # item guard
    w.close()  # kernel


def _emit_mis_kernel(w: CodeWriter, spec: StyleSpec) -> None:
    data = spec.driver is Driver.DATA
    det = spec.determinism is Determinism.DETERMINISTIC
    read = "status_in" if det else "status"
    write = "status_out" if det else "status"
    params = [
        "const int nodes", "const int edges",
        "const int* __restrict__ nbr_idx", "const int* __restrict__ nbr_list",
        "const int* __restrict__ src_list", "const int* __restrict__ dst_list",
        f"signed char* {read}" if not det else
        f"const signed char* {read}, signed char* {write}",
    ]
    if data:
        params += ["const int* __restrict__ wl", "const int wl_size",
                   "int* stat", "const int itr"]
    params += ["int* changed"]
    w.open(f"__global__ void mis_kernel({', '.join(params)})")
    if spec.iteration is Iteration.VERTEX:
        count = "wl_size" if data else "nodes"
        _emit_item_header(w, spec, count)
        w.line("const int v = " + ("wl[item];" if data else "(int)item;"))
        w.open(f"if ({read}[v] == 0)")
        w.raw(
            f"""
bool in_set = true;
for (int i = nbr_idx[v]; i < nbr_idx[v + 1]; i++) {{
  const int u = nbr_list[i];
  if ({read}[u] == 1) {{ {write}[v] = 2; *changed = 1; in_set = false; break; }}
  if ({read}[u] == 0 && hash_pri(u) > hash_pri(v)) {{ in_set = false; break; }}
}}
"""
        )
        w.open("if (in_set)")
        w.lines(f"{write}[v] = 1;", "*changed = 1;")
        if spec.flow is Flow.PUSH:
            w.open("for (int i = nbr_idx[v]; i < nbr_idx[v + 1]; i++)")
            w.line(f"if ({read}[nbr_list[i]] == 0) {write}[nbr_list[i]] = 2;")
            w.close()
        w.close()
        w.close()  # undecided guard
        w.close()  # item guard
    else:  # EDGE: phase-1 blocking kernel (a joiner pass follows on host)
        count = "wl_size" if data else "edges"
        _emit_item_header(w, spec, count)
        w.line("const int e = " + ("wl[item];" if data else "(int)item;"))
        if spec.flow is Flow.PULL:
            w.lines("const int mine = src_list[e];", "const int other = dst_list[e];")
        else:
            w.lines("const int mine = dst_list[e];", "const int other = src_list[e];")
        w.open(f"if ({read}[mine] == 0)")
        w.line(f"if ({read}[other] == 1) {{ {write}[mine] = 2; *changed = 1; }}")
        w.line(f"else if ({read}[other] == 0 && hash_pri(other) > hash_pri(mine)) "
               "blocked[mine] = 1;")
        w.close()
        w.close()  # item guard
    w.close()  # kernel


_RELAX_MAIN = r"""
int main(int argc, char** argv) {
  if (argc < 2) { fprintf(stderr, "usage: %s graph.el [source]\n", argv[0]); return 1; }
  Graph g = read_graph(argv[1]);
  const int source = argc > 2 ? atoi(argv[2]) : 0;
  printf("input: %d nodes, %d directed edges\n", g.nodes, g.edges);

  // Device buffers.
  int *d_nbr_idx, *d_nbr_list, *d_e_weight, *d_src, *d_dst, *d_changed;
  cudaMalloc(&d_nbr_idx, (g.nodes + 1) * sizeof(int));
  cudaMalloc(&d_nbr_list, g.edges * sizeof(int));
  cudaMalloc(&d_e_weight, g.edges * sizeof(int));
  cudaMalloc(&d_src, g.edges * sizeof(int));
  cudaMalloc(&d_dst, g.edges * sizeof(int));
  cudaMalloc(&d_changed, sizeof(int));
  cudaMemcpy(d_nbr_idx, g.nbr_idx.data(), (g.nodes + 1) * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemcpy(d_nbr_list, g.nbr_list.data(), g.edges * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemcpy(d_e_weight, g.e_weight.data(), g.edges * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemcpy(d_src, g.src_list.data(), g.edges * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemcpy(d_dst, g.dst_list.data(), g.edges * sizeof(int), cudaMemcpyHostToDevice);

  std::vector<val_t> init(g.nodes, VAL_MAX);
  if (SOURCE_BASED) init[source] = 0;
  else for (int v = 0; v < g.nodes; v++) init[v] = v;
  VAL_T* d_val;  VAL_T* d_val2 = nullptr;
  cudaMalloc(&d_val, g.nodes * sizeof(VAL_T));
  cudaMemcpy(d_val, init.data(), g.nodes * sizeof(val_t), cudaMemcpyHostToDevice);
#if DETERMINISTIC
  cudaMalloc(&d_val2, g.nodes * sizeof(VAL_T));
#endif
#if DATA_DRIVEN
  int *d_wl, *d_wl_next, *d_wl_size, *d_stat;
  cudaMalloc(&d_wl, (size_t)(g.edges + g.nodes) * sizeof(int));
  cudaMalloc(&d_wl_next, (size_t)(g.edges + g.nodes) * sizeof(int));
  cudaMalloc(&d_wl_size, sizeof(int));
  cudaMalloc(&d_stat, g.nodes * sizeof(int));
  cudaMemset(d_stat, 0xff, g.nodes * sizeof(int));
  std::vector<int> wl0 = initial_worklist(g, source);
  int wl_size = (int)wl0.size();
  cudaMemcpy(d_wl, wl0.data(), wl_size * sizeof(int), cudaMemcpyHostToDevice);
#endif

  cudaEvent_t t0, t1; cudaEventCreate(&t0); cudaEventCreate(&t1);
  cudaEventRecord(t0);
  int itr = 0;
  for (;;) {
    itr++;
    int changed = 0;
    cudaMemcpy(d_changed, &changed, sizeof(int), cudaMemcpyHostToDevice);
#if DETERMINISTIC
    cudaMemcpy(d_val2, d_val, g.nodes * sizeof(VAL_T), cudaMemcpyDeviceToDevice);
#endif
#if DATA_DRIVEN
    if (wl_size == 0) break;
    int zero = 0;
    cudaMemcpy(d_wl_size, &zero, sizeof(int), cudaMemcpyHostToDevice);
    const long long items = (long long)wl_size * ITEM_THREADS;
#else
    const long long items = (long long)WORK_ITEMS(g) * ITEM_THREADS;
#endif
    const int block = 256;
    const long long grid = PERSISTENT_GRID(items, block);
    relax_kernel<<<grid, block>>>(RELAX_ARGS);
    cudaDeviceSynchronize();
#if DATA_DRIVEN
    cudaMemcpy(&wl_size, d_wl_size, sizeof(int), cudaMemcpyDeviceToHost);
    std::swap(d_wl, d_wl_next);
#else
    cudaMemcpy(&changed, d_changed, sizeof(int), cudaMemcpyDeviceToHost);
    if (!changed) break;
#endif
#if DETERMINISTIC
    std::swap(d_val, d_val2);
#endif
  }
  cudaEventRecord(t1); cudaEventSynchronize(t1);
  float ms = 0.f; cudaEventElapsedTime(&ms, t0, t1);
  printf("converged after %d iterations in %.3f ms (%.4f GES)\n",
         itr, ms, g.edges / (ms * 1e6));

  // Verification against the serial reference (Section 4.1).
  std::vector<val_t> result(g.nodes);
  cudaMemcpy(result.data(), d_val, g.nodes * sizeof(val_t), cudaMemcpyDeviceToHost);
  std::vector<val_t> expected = serial_reference(g, source);
  for (int v = 0; v < g.nodes; v++)
    if (normalize(result, v) != normalize(expected, v)) {
      fprintf(stderr, "MISMATCH at vertex %d\n", v);
      return 1;
    }
  printf("verified OK\n");
  return 0;
}
"""


def _emit_relax_main(w: CodeWriter, spec: StyleSpec) -> None:
    alg = spec.algorithm
    data = spec.driver is Driver.DATA
    det = spec.determinism is Determinism.DETERMINISTIC
    vertex = spec.iteration is Iteration.VERTEX
    gran_threads = {
        Granularity.THREAD: "1",
        Granularity.WARP: "WS",
        Granularity.BLOCK: "256",
    }[spec.granularity]
    persistent = spec.persistence is Persistence.PERSISTENT

    w.line(f"#define SOURCE_BASED {int(alg is not Algorithm.CC)}")
    w.line(f"#define DETERMINISTIC {int(det)}")
    w.line(f"#define DATA_DRIVEN {int(data)}")
    w.line(f"#define ITEM_THREADS {gran_threads}")
    cost_serial = {
        Algorithm.SSSP: "g.e_weight[i]", Algorithm.BFS: "1", Algorithm.CC: "0"
    }[alg]
    w.line(f"#define EDGE_COST_SERIAL {cost_serial}")
    w.line("#define WORK_ITEMS(g) "
           + ("(g).nodes" if vertex else "(g).edges"))
    if persistent:
        w.line("#define PERSISTENT_GRID(items, block) "
               "std::min<long long>((items + block - 1) / block, 2048LL)")
    else:
        w.line("#define PERSISTENT_GRID(items, block) ((items + block - 1) / block)")
    w.line(f"typedef {_val_type(spec)} VAL_T;")
    w.blank()
    # Argument pack for the kernel call.
    args = ["g.nodes", "g.edges", "d_nbr_idx", "d_nbr_list", "d_e_weight",
            "d_src", "d_dst"]
    args += ["d_val, d_val2"] if det else ["d_val"]
    if data:
        args += ["d_wl", "wl_size", "d_wl_next", "d_wl_size", "d_stat", "itr"]
    args += ["d_changed"]
    w.line(f"#define RELAX_ARGS {', '.join(args)}")
    w.blank()
    if data:
        if vertex:
            w.raw(
                """
static std::vector<int> initial_worklist(const Graph& g, int source) {
  if (!SOURCE_BASED) {
    std::vector<int> all(g.nodes);
    for (int v = 0; v < g.nodes; v++) all[v] = v;
    return all;
  }
#if PULL_FLOW
  std::vector<int> wl(g.nbr_list.begin() + g.nbr_idx[source],
                      g.nbr_list.begin() + g.nbr_idx[source + 1]);
  return wl;
#else
  return std::vector<int>{source};
#endif
}
"""
            )
        else:
            w.raw(
                """
static std::vector<int> initial_worklist(const Graph& g, int source) {
  std::vector<int> wl;
  if (!SOURCE_BASED) {
    wl.resize(g.edges);
    for (int e = 0; e < g.edges; e++) wl[e] = e;
  } else {
    for (int i = g.nbr_idx[source]; i < g.nbr_idx[source + 1]; i++)
      wl.push_back(i);
  }
  return wl;
}
"""
            )
        w.blank()
    if alg is Algorithm.CC:
        w.raw(
            """
static val_t normalize(const std::vector<val_t>& labels, int v) {
  // Component labels are compared through their minimum representative.
  val_t x = labels[v];
  while (labels[(int)x] != x) x = labels[(int)x];
  return x;
}
"""
        )
    else:
        w.line("static val_t normalize(const std::vector<val_t>& vals, int v) "
               "{ return vals[v]; }")
    w.blank()
    w.raw(_RELAX_MAIN)


def generate_cuda(spec: StyleSpec, *, data_bits: int = 32) -> str:
    """Generate the complete CUDA source of one program variant.

    ``data_bits`` selects the value width: the paper evaluates the 32-bit
    versions (int/float) but Indigo2 ships 64-bit (long long / double)
    variants too, doubling the suite.
    """
    if data_bits not in (32, 64):
        raise ValueError("data_bits must be 32 or 64")
    spec.validate()
    alg = spec.algorithm
    w = CodeWriter()
    styles = ", ".join(f"{k}={v}" for k, v in spec.describe().items()
                       if k not in ("algorithm", "model"))
    w.lines(
        "// " + "-" * 70,
        f"// {ALGORITHM_TITLES[alg]} — CUDA",
        f"// style: {styles}",
        "// generated by repro.codegen (Indigo2-style program variant)",
        "// " + "-" * 70,
    )
    w.raw(_PREAMBLE)
    if spec.atomic_flavor is AtomicFlavor.CUDA_ATOMIC:
        w.line("#include <cuda/atomic>")
    w.blank()
    w.line("#define WS 32  // warp size")
    if data_bits == 32:
        w.lines("typedef int val_t;", "#define VAL_MAX INT_MAX")
    else:
        w.lines("typedef long long val_t;", "#define VAL_MAX LLONG_MAX")
    if alg is Algorithm.PR:
        if data_bits == 32:
            w.lines("typedef float rank_t;",
                    "#define DAMPING 0.85f", "#define TOLERANCE 1e-4f")
        else:
            w.lines("typedef double rank_t;",
                    "#define DAMPING 0.85", "#define TOLERANCE 1e-8")
    w.blank()
    w.raw(_HOST_GRAPH)
    w.blank()
    if alg in (Algorithm.MIS,):
        w.raw(
            """
__host__ __device__ inline unsigned long long hash_pri(int v) {
  unsigned long long x = (unsigned long long)v;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
"""
        )
        w.blank()
    if spec.flow is Flow.PULL:
        w.line("#define PULL_FLOW 1")
    else:
        w.line("#define PULL_FLOW 0")
    w.blank()

    if alg in (Algorithm.BFS, Algorithm.SSSP, Algorithm.CC):
        w.raw(_serial_reference(alg)
              .replace("EDGE_COST_SERIAL", {
                  Algorithm.SSSP: "g.e_weight[i]",
                  Algorithm.BFS: "1",
                  Algorithm.CC: "0"}[alg])
              .replace("SOURCE_BASED", "1" if alg is not Algorithm.CC else "0"))
        w.blank()
        _emit_relax_kernel(w, spec)
        w.blank()
        _emit_relax_main(w, spec)
    elif alg is Algorithm.MIS:
        w.raw(_serial_reference(alg))
        w.blank()
        if spec.iteration is Iteration.EDGE:
            w.line("__device__ signed char blocked_storage[1 << 26];")
            w.line("#define blocked blocked_storage")
            w.blank()
        _emit_mis_kernel(w, spec)
        w.blank()
        _emit_driverless_main(w, spec, "mis")
    elif alg is Algorithm.PR:
        w.raw(_serial_reference(alg))
        w.blank()
        _emit_pr_kernels(w, spec)
        w.blank()
        _emit_driverless_main(w, spec, "pr")
    else:  # TC
        w.raw(_serial_reference(alg))
        w.blank()
        _emit_tc_kernel(w, spec)
        w.blank()
        _emit_driverless_main(w, spec, "tc")
    return w.render()


_COMMON_DEVICE_SETUP = r"""
  int *d_nbr_idx, *d_nbr_list, *d_src, *d_dst;
  cudaMalloc(&d_nbr_idx, (g.nodes + 1) * sizeof(int));
  cudaMalloc(&d_nbr_list, g.edges * sizeof(int));
  cudaMalloc(&d_src, g.edges * sizeof(int));
  cudaMalloc(&d_dst, g.edges * sizeof(int));
  cudaMemcpy(d_nbr_idx, g.nbr_idx.data(), (g.nodes + 1) * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemcpy(d_nbr_list, g.nbr_list.data(), g.edges * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemcpy(d_src, g.src_list.data(), g.edges * sizeof(int), cudaMemcpyHostToDevice);
  cudaMemcpy(d_dst, g.dst_list.data(), g.edges * sizeof(int), cudaMemcpyHostToDevice);
"""


def _emit_driverless_main(w: CodeWriter, spec: StyleSpec, kind: str) -> None:
    """Host driver for MIS / PR / TC: setup, loop, verification."""
    gran_threads = {
        Granularity.THREAD: "1",
        Granularity.WARP: "WS",
        Granularity.BLOCK: "256",
    }[spec.granularity]
    vertex = spec.iteration is Iteration.VERTEX
    det = spec.determinism is Determinism.DETERMINISTIC
    items_expr = "g.nodes" if vertex else "g.edges"
    w.open("int main(int argc, char** argv)")
    w.raw(
        r"""
if (argc < 2) { fprintf(stderr, "usage: %s graph.el\n", argv[0]); return 1; }
Graph g = read_graph(argv[1]);
printf("input: %d nodes, %d directed edges\n", g.nodes, g.edges);
"""
    )
    w.raw(_COMMON_DEVICE_SETUP)
    w.line(f"const long long items = (long long){items_expr} * {gran_threads}LL;")
    w.lines("const int block = 256;",
            "const long long grid = (items + block - 1) / block;")
    if kind == "tc":
        w.raw(
            """
unsigned long long *d_ctr, total = 0;
cudaMalloc(&d_ctr, sizeof(unsigned long long));
cudaMemset(d_ctr, 0, sizeof(unsigned long long));
tc_kernel<<<grid, block>>>(g.nodes, g.edges, d_nbr_idx, d_nbr_list, d_src, d_dst, d_ctr);
cudaDeviceSynchronize();
cudaMemcpy(&total, d_ctr, sizeof(unsigned long long), cudaMemcpyDeviceToHost);
const long long expected = serial_reference(g, 0);
printf("triangles: %llu\n", total);
if ((long long)total != expected) { fprintf(stderr, "MISMATCH: expected %lld\n", expected); return 1; }
printf("verified OK\n");
return 0;
"""
        )
        w.close()
        return
    if kind == "pr":
        buffers = (
            "rank_t *d_rank, *d_rank2 = nullptr, *d_err;"
            if det else "rank_t *d_rank, *d_err;"
        )
        w.raw(
            f"""
{buffers}
int* d_deg;
cudaMalloc(&d_rank, g.nodes * sizeof(rank_t));
cudaMalloc(&d_err, sizeof(rank_t));
cudaMalloc(&d_deg, g.nodes * sizeof(int));
std::vector<rank_t> rank0(g.nodes, (rank_t)1 / g.nodes);
std::vector<int> deg(g.nodes);
for (int v = 0; v < g.nodes; v++) deg[v] = g.nbr_idx[v + 1] - g.nbr_idx[v];
cudaMemcpy(d_rank, rank0.data(), g.nodes * sizeof(rank_t), cudaMemcpyHostToDevice);
cudaMemcpy(d_deg, deg.data(), g.nodes * sizeof(int), cudaMemcpyHostToDevice);
"""
        )
        if det:
            w.line("cudaMalloc(&d_rank2, g.nodes * sizeof(rank_t));")
        rank_args = "d_rank, d_rank2" if det else "d_rank"
        w.open("for (int iter = 0; iter < 10000; iter++)")
        w.raw(
            f"""
rank_t err = 0;
cudaMemcpy(d_err, &err, sizeof(rank_t), cudaMemcpyHostToDevice);
pr_kernel<<<grid, block>>>(g.nodes, d_nbr_idx, d_nbr_list, d_deg, {rank_args}, d_err);
cudaDeviceSynchronize();
cudaMemcpy(&err, d_err, sizeof(rank_t), cudaMemcpyDeviceToHost);
"""
        )
        if det:
            w.line("std::swap(d_rank, d_rank2);")
        w.line("if (err < TOLERANCE) break;")
        w.close()
        w.raw(
            """
std::vector<rank_t> result(g.nodes);
cudaMemcpy(result.data(), d_rank, g.nodes * sizeof(rank_t), cudaMemcpyDeviceToHost);
std::vector<rank_t> expected = serial_reference(g, 0);
for (int v = 0; v < g.nodes; v++)
  if (fabs(result[v] - expected[v]) > (rank_t)1e-4) {
    fprintf(stderr, "MISMATCH at vertex %d\n", v);
    return 1;
  }
printf("verified OK\n");
return 0;
"""
        )
        w.close()
        return
    # kind == "mis"
    data = spec.driver is Driver.DATA
    status_buffers = (
        "signed char *d_status, *d_status2;" if det else "signed char *d_status;"
    )
    w.raw(
        f"""
{status_buffers}
int* d_changed;
cudaMalloc(&d_status, g.nodes);
cudaMemset(d_status, 0, g.nodes);
cudaMalloc(&d_changed, sizeof(int));
"""
    )
    if det:
        w.line("cudaMalloc(&d_status2, g.nodes);")
    if data:
        w.raw(
            """
int *d_wl, *d_stat;
cudaMalloc(&d_wl, (size_t)(g.edges + g.nodes) * sizeof(int));
cudaMalloc(&d_stat, g.nodes * sizeof(int));
cudaMemset(d_stat, 0xff, g.nodes * sizeof(int));
"""
        )
    status_args = "d_status, d_status2" if det else "d_status"
    wl_args = ", d_wl, wl_size, d_stat, iter" if data else ""
    w.open("for (int iter = 1; ; iter++)")
    if data:
        w.raw(
            """
// Rebuild the undecided worklist on the host (simple reference scheme).
std::vector<signed char> snapshot(g.nodes);
cudaMemcpy(snapshot.data(), d_status, g.nodes, cudaMemcpyDeviceToHost);
std::vector<int> undecided;
for (int v = 0; v < g.nodes; v++) if (snapshot[v] == 0) undecided.push_back(v);
const int wl_size = (int)undecided.size();
if (wl_size == 0) break;
cudaMemcpy(d_wl, undecided.data(), wl_size * sizeof(int), cudaMemcpyHostToDevice);
"""
        )
    if det:
        w.line("cudaMemcpy(d_status2, d_status, g.nodes, "
               "cudaMemcpyDeviceToDevice);")
    w.raw(
        f"""
int changed = 0;
cudaMemcpy(d_changed, &changed, sizeof(int), cudaMemcpyHostToDevice);
mis_kernel<<<grid, block>>>(g.nodes, g.edges, d_nbr_idx, d_nbr_list, d_src, d_dst, {status_args}{wl_args}, d_changed);
cudaDeviceSynchronize();
cudaMemcpy(&changed, d_changed, sizeof(int), cudaMemcpyDeviceToHost);
"""
    )
    if det:
        w.line("std::swap(d_status, d_status2);")
    if not data:
        w.line("if (!changed) break;")
    w.close()
    w.raw(
        """
std::vector<signed char> result(g.nodes);
cudaMemcpy(result.data(), d_status, g.nodes, cudaMemcpyDeviceToHost);
std::vector<signed char> expected = serial_reference(g, 0);
for (int v = 0; v < g.nodes; v++)
  if ((result[v] == 1) != (expected[v] == 1)) {
    fprintf(stderr, "MISMATCH at vertex %d\n", v);
    return 1;
  }
printf("verified OK\n");
return 0;
"""
    )
    w.close()
