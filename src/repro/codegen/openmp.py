"""OpenMP source generation: one complete ``.cpp`` file per StyleSpec.

Constructs tracked per axis: ``#pragma omp parallel for`` with default or
``schedule(dynamic)`` (Listing 12), ``#pragma omp critical`` for min/max
RMW (Section 5.3.1's consequence of ``omp atomic`` supporting only simple
operators), worklists with atomic-capture pushes and ``critical`` stamps
(Listing 3), push/pull relaxation (Listing 4), double buffering
(Listing 6), and the three CPU reduction styles (Listing 11).
"""

from __future__ import annotations

from ..styles.axes import (
    Algorithm,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    Iteration,
    OmpSchedule,
    Update,
)
from ..styles.spec import StyleSpec
from .common import ALGORITHM_TITLES, CodeWriter
from .cpu_shared import (
    CPU_GRAPH,
    CPU_PREAMBLE,
    cost_expr,
    emit_serial_reference,
    emit_verification_main,
    hash_pri,
)

__all__ = ["generate_openmp"]


def _pragma(spec: StyleSpec) -> str:
    if spec.omp_schedule is OmpSchedule.DYNAMIC:
        return "#pragma omp parallel for schedule(dynamic)"
    return "#pragma omp parallel for"


def _emit_update(w: CodeWriter, spec: StyleSpec, target: str) -> None:
    """Listing 5 in OpenMP: RMW min/max needs a critical section
    (Section 5.3.1), read-write is a plain check + store."""
    cell = f"val[{target}]"
    if spec.determinism is Determinism.DETERMINISTIC:
        cell = f"val_out[{target}]"
    if spec.update is Update.READ_MODIFY_WRITE:
        w.lines(
            "// OpenMP has no atomic min: the RMW update is a critical",
            "// section (Section 5.3.1).",
            "bool improved = false;",
            "#pragma omp critical",
        )
        w.open("")
        w.line(f"if (new_val < {cell}) {{ {cell} = new_val; "
               f"changed = 1; improved = true; }}")
        w.close()
    else:
        w.lines(
            f"const val_t old_val = {cell};",
            "bool improved = false;",
        )
        w.open("if (new_val < old_val)")
        w.lines(f"{cell} = new_val;", "changed = 1;", "improved = true;")
        w.close()
    if spec.driver is Driver.DATA:
        _emit_push(w, spec, target)
    else:
        w.line("(void)improved;")


def _emit_push(w: CodeWriter, spec: StyleSpec, target: str) -> None:
    """Listing 3: populate the next worklist on improvement.

    Push flow enqueues the improved vertex (vertex items) or its out-edges
    (edge items); pull flow enqueues every neighbor of the improved
    vertex — the "useless items" trade-off of Section 2.4.
    """
    vertex = spec.iteration is Iteration.VERTEX
    pull = spec.flow is Flow.PULL

    def enqueue(expr: str) -> None:
        if spec.dup is Dup.NODUP:
            w.lines("int seen;",
                    "#pragma omp critical  // the stamp is an atomicMax")
            w.open("")
            w.line(f"seen = stat[{expr}]; stat[{expr}] = itr;")
            w.close()
            w.open("if (seen != itr)")
        else:
            w.open("if (true)")
        w.lines(
            "int slot;",
            "#pragma omp atomic capture",
            "slot = wl_next_size++;",
            f"wl_next[slot] = {expr};",
        )
        w.close()

    w.open("if (improved)")
    if vertex and not pull:
        enqueue(target)
    elif vertex and pull:
        w.open(f"for (int k = g.nbr_idx[{target}]; k < g.nbr_idx[{target} + 1]; k++)")
        enqueue("g.nbr_list[k]")
        w.close()
    else:  # edge items (push flow only)
        w.open(f"for (int k = g.nbr_idx[{target}]; k < g.nbr_idx[{target} + 1]; k++)")
        enqueue("k")
        w.close()
    w.close()


def _emit_relax_body(w: CodeWriter, spec: StyleSpec) -> None:
    alg = spec.algorithm
    data = spec.driver is Driver.DATA
    pull = spec.flow is Flow.PULL
    det = spec.determinism is Determinism.DETERMINISTIC
    read = "val_in" if det else "val"

    if spec.iteration is Iteration.VERTEX:
        count = "wl_size" if data else "g.nodes"
        w.line(_pragma(spec))
        w.open(f"for (int item = 0; item < {count}; item++)")
        w.line("const int v = " + ("wl[item];" if data else "item;"))
        w.open("for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)")
        w.line("const int u = g.nbr_list[i];")
        if pull:
            w.line(f"if ({read}[u] == VAL_MAX) continue;")
            w.line(f"const val_t new_val = {read}[u] + {cost_expr(alg, 'i')};")
            _emit_update(w, spec, "v")
        else:
            w.line(f"if ({read}[v] == VAL_MAX) break;")
            w.line(f"const val_t new_val = {read}[v] + {cost_expr(alg, 'i')};")
            _emit_update(w, spec, "u")
        w.close()
        w.close()
    else:
        count = "wl_size" if data else "g.edges"
        w.line(_pragma(spec))
        w.open(f"for (int item = 0; item < {count}; item++)")
        w.line("const int e = " + ("wl[item];" if data else "item;"))
        if pull:
            w.lines("const int v = g.src_list[e];", "const int u = g.dst_list[e];")
        else:
            w.lines("const int v = g.dst_list[e];", "const int u = g.src_list[e];")
        w.open(f"if ({read}[u] != VAL_MAX)")
        w.line(f"const val_t new_val = {read}[u] + {cost_expr(alg, 'e')};")
        _emit_update(w, spec, "v")
        w.close()
        w.close()


def _emit_reduction_loop(w: CodeWriter, spec: StyleSpec, body: str,
                         acc: str, count: str) -> None:
    """Listing 11: atomic- / critical- / clause-reduction."""
    red = spec.cpu_reduction
    if red is CpuReduction.CLAUSE:
        w.line(f"#pragma omp parallel for reduction(+:{acc})"
               + (" schedule(dynamic)" if spec.omp_schedule is OmpSchedule.DYNAMIC else ""))
        w.open(f"for (int v = 0; v < {count}; v++)")
        w.raw(body)
        w.line(f"{acc} += contribution;")
        w.close()
    else:
        w.line(_pragma(spec))
        w.open(f"for (int v = 0; v < {count}; v++)")
        w.raw(body)
        if red is CpuReduction.ATOMIC:
            w.line("#pragma omp atomic")
        else:
            w.line("#pragma omp critical")
        w.line(f"{acc} += contribution;")
        w.close()


def _emit_pr(w: CodeWriter, spec: StyleSpec) -> None:
    det = spec.determinism is Determinism.DETERMINISTIC
    pull = spec.flow is Flow.PULL
    w.open("static void pagerank(const Graph& g, std::vector<rank_t>& rank)")
    if det:
        w.raw(
            """
std::vector<rank_t> rank2(g.nodes);
rank_t* rank_in = rank.data();
rank_t* rank_out = rank2.data();
"""
        )
        read, write = "rank_in", "rank_out"
    else:
        w.line("rank_t* rank_in = rank.data();  // in-place (non-deterministic)")
        read, write = "rank_in", "rank_in"
    w.open("for (int iter = 0; iter < 10000; iter++)")
    w.line("rank_t err = 0;")
    if pull:
        body = f"""
rank_t sum = 0;
for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {{
  const int u = g.nbr_list[i];
  sum += {read}[u] / g.degree(u);
}}
const rank_t new_rank = (1 - DAMPING) / g.nodes + DAMPING * sum;
const rank_t contribution = fabs(new_rank - {read}[v]);
{write}[v] = new_rank;
"""
        _emit_reduction_loop(w, spec, body, "err", "g.nodes")
    else:
        # Push (deterministic only): reset, scatter with atomic adds, then
        # accumulate the error with the selected reduction style.
        w.raw(
            f"""
#pragma omp parallel for
for (int v = 0; v < g.nodes; v++) {write}[v] = (1 - DAMPING) / g.nodes;
#pragma omp parallel for
for (int v = 0; v < g.nodes; v++) {{
  if (!g.degree(v)) continue;
  const rank_t c = DAMPING * {read}[v] / g.degree(v);
  for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {{
    #pragma omp atomic
    {write}[g.nbr_list[i]] += c;
  }}
}}
"""
        )
        err_body = f"""
const rank_t contribution = fabs({write}[v] - {read}[v]);
"""
        _emit_reduction_loop(w, spec, err_body, "err", "g.nodes")
    if det:
        w.line("std::swap(rank_in, rank_out);")
    w.line("if (err < TOLERANCE) break;")
    w.close()
    if det:
        w.raw(
            """
if (rank_in != rank.data())
  std::copy(rank_in, rank_in + g.nodes, rank.data());
"""
        )
    w.close()


def _emit_tc(w: CodeWriter, spec: StyleSpec) -> None:
    vertex = spec.iteration is Iteration.VERTEX
    count = "g.nodes" if vertex else "g.edges"
    w.open("static long long triangle_count(const Graph& g)")
    w.line("long long total = 0;")
    if vertex:
        body = """
long long contribution = 0;
for (int j = g.nbr_idx[v]; j < g.nbr_idx[v + 1]; j++) {
  const int u = g.nbr_list[j];
  if (u <= v) continue;
  contribution += merge_count(g, v, u);
}
"""
    else:
        body = """
long long contribution = 0;
{
  const int s = g.src_list[v], d = g.dst_list[v];
  if (d > s) contribution = merge_count(g, s, d);
}
"""
    _emit_reduction_loop(w, spec, body, "total", count)
    w.line("return total;")
    w.close()


def _emit_mis(w: CodeWriter, spec: StyleSpec) -> None:
    det = spec.determinism is Determinism.DETERMINISTIC
    data = spec.driver is Driver.DATA
    push = spec.flow is Flow.PUSH
    edge = spec.iteration is Iteration.EDGE
    read = "status_in" if det else "status_ptr"
    write = "status_out" if det else "status_ptr"
    mine = "g.dst_list[e]" if push else "g.src_list[e]"
    other = "g.src_list[e]" if push else "g.dst_list[e]"
    w.open("static void mis(const Graph& g, std::vector<signed char>& status)")
    w.line("std::vector<signed char> status2(g.nodes, 0);")
    w.line(f"signed char* {read} = status.data();")
    if det:
        w.line(f"signed char* {write} = status2.data();")
    if edge:
        w.line("std::vector<signed char> blocked(g.nodes, 0);")
    if data:
        if edge:
            w.raw(
                """
std::vector<int> wl(g.edges);
for (int e = 0; e < g.edges; e++) wl[e] = e;
"""
            )
        else:
            w.raw(
                """
std::vector<int> wl(g.nodes);
for (int v = 0; v < g.nodes; v++) wl[v] = v;
"""
            )
    w.open("for (;;)")
    if det:
        w.line(f"std::copy({read}, {read} + g.nodes, {write});")
    w.line("int changed = 0;")
    if edge:
        # Phase 1 over edges (mirrors the CUDA edge kernel): each edge
        # excludes or blocks its "mine" endpoint; a serial joiner pass
        # then admits every unblocked undecided vertex.
        w.line("std::fill(blocked.begin(), blocked.end(), 0);")
        count = "(int)wl.size()" if data else "g.edges"
        w.line(_pragma(spec))
        w.open(f"for (int item = 0; item < {count}; item++)")
        w.line("const int e = " + ("wl[item];" if data else "item;"))
        w.lines(f"const int mine = {mine};", f"const int other = {other};")
        w.open(f"if ({read}[mine] == 0)")
        w.line(f"if ({read}[other] == 1) {{ {write}[mine] = 2; changed = 1; }}")
        w.line(f"else if ({read}[other] == 0 && "
               "hash_pri(other) > hash_pri(mine)) blocked[mine] = 1;")
        w.close()
        w.close()  # parallel for
        w.open("for (int v = 0; v < g.nodes; v++)")
        w.line(f"if ({write}[v] == 0 && !blocked[v]) "
               f"{{ {write}[v] = 1; changed = 1; }}")
        w.close()
    else:
        count = "(int)wl.size()" if data else "g.nodes"
        w.line(_pragma(spec))
        w.open(f"for (int item = 0; item < {count}; item++)")
        w.line("const int v = " + ("wl[item];" if data else "item;"))
        w.open(f"if ({read}[v] == 0)")
        w.raw(
            f"""
bool in_set = true;
for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {{
  const int u = g.nbr_list[i];
  if ({read}[u] == 1) {{ {write}[v] = 2; changed = 1; in_set = false; break; }}
  if ({read}[u] == 0 && hash_pri(u) > hash_pri(v)) {{ in_set = false; break; }}
}}
"""
        )
        w.open("if (in_set)")
        w.lines(f"{write}[v] = 1;", "changed = 1;")
        if push:
            w.open("for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)")
            w.line(f"if ({read}[g.nbr_list[i]] == 0) {write}[g.nbr_list[i]] = 2;")
            w.close()
        w.close()
        w.close()
        w.close()  # parallel for
    if det:
        w.line(f"std::swap({read}, {write});")
    if data:
        if edge:
            w.raw(
                f"""
std::vector<int> next;
for (int e : wl) if ({read}[{mine}] == 0) next.push_back(e);
wl.swap(next);
if (wl.empty()) break;
"""
            )
        else:
            w.raw(
                f"""
std::vector<int> next;
for (int v : wl) if ({read}[v] == 0) next.push_back(v);
wl.swap(next);
if (wl.empty()) break;
"""
            )
    else:
        w.line("if (!changed) break;")
    w.close()
    if det:
        w.raw(
            f"""
if ({read} != status.data())
  std::copy({read}, {read} + g.nodes, status.data());
"""
        )
    w.close()


def generate_openmp(spec: StyleSpec, *, data_bits: int = 32) -> str:
    """Generate the complete OpenMP source of one program variant.

    ``data_bits`` selects the value width (32: int/float as evaluated in
    the paper; 64: long long / double as also shipped by Indigo2).
    """
    if data_bits not in (32, 64):
        raise ValueError("data_bits must be 32 or 64")
    spec.validate()
    alg = spec.algorithm
    w = CodeWriter()
    styles = ", ".join(f"{k}={v}" for k, v in spec.describe().items()
                       if k not in ("algorithm", "model"))
    w.lines(
        "// " + "-" * 70,
        f"// {ALGORITHM_TITLES[alg]} — OpenMP",
        f"// style: {styles}",
        "// generated by repro.codegen (Indigo2-style program variant)",
        "// compile: g++ -O3 -fopenmp",
        "// " + "-" * 70,
    )
    w.raw(CPU_PREAMBLE)
    w.line("#include <omp.h>")
    if data_bits == 32:
        w.lines("typedef int val_t;", "#define VAL_MAX INT_MAX")
    else:
        w.lines("typedef long long val_t;", "#define VAL_MAX LLONG_MAX")
    if alg is Algorithm.PR:
        if data_bits == 32:
            w.lines("typedef float rank_t;",
                    "#define DAMPING 0.85f", "#define TOLERANCE 1e-4f")
        else:
            w.lines("typedef double rank_t;",
                    "#define DAMPING 0.85", "#define TOLERANCE 1e-8")
    w.blank()
    w.raw(CPU_GRAPH)
    w.blank()
    if alg is Algorithm.MIS:
        w.raw(hash_pri())
        w.blank()
    emit_serial_reference(w, alg)
    w.blank()
    if alg in (Algorithm.BFS, Algorithm.SSSP, Algorithm.CC):
        _emit_relax_driver(w, spec)
    elif alg is Algorithm.MIS:
        _emit_mis(w, spec)
    elif alg is Algorithm.PR:
        _emit_pr(w, spec)
    else:
        w.raw(
            """
static long long merge_count(const Graph& g, int v, int u) {
  long long c = 0;
  int a = g.nbr_idx[v], b = g.nbr_idx[u];
  while (a < g.nbr_idx[v + 1] && b < g.nbr_idx[u + 1]) {
    const int x = g.nbr_list[a], y = g.nbr_list[b];
    if (x <= v) { a++; continue; }
    if (y <= u) { b++; continue; }
    if (x == y) { c++; a++; b++; }
    else if (x < y) a++; else b++;
  }
  return c;
}
"""
        )
        w.blank()
        _emit_tc(w, spec)
    w.blank()
    emit_verification_main(w, alg)
    return w.render()


def _emit_relax_driver(w: CodeWriter, spec: StyleSpec) -> None:
    alg = spec.algorithm
    data = spec.driver is Driver.DATA
    det = spec.determinism is Determinism.DETERMINISTIC
    if data:
        _emit_initial_worklist(w, spec)
        w.blank()
    w.open("static void compute(const Graph& g, std::vector<val_t>& val, int source)")
    w.raw(
        """
for (int v = 0; v < g.nodes; v++) val[v] = SOURCE_BASED ? VAL_MAX : (val_t)v;
if (SOURCE_BASED) val[source] = 0;
"""
    )
    if det:
        w.line("std::vector<val_t> val2(val);")
        w.lines("val_t* val_in = val.data();", "val_t* val_out = val2.data();")
    if data:
        w.raw(
            """
std::vector<int> wl = initial_worklist(g, source);
std::vector<int> wl_next_buf(g.edges + g.nodes);
std::vector<int> stat_buf(g.nodes, -1);
int* wl_next = wl_next_buf.data();
int* stat = stat_buf.data();
"""
        )
    w.open("for (int itr = 1; ; itr++)")
    w.line("int changed = 0;")
    if det:
        w.line("std::copy(val_in, val_in + g.nodes, val_out);")
    if data:
        w.lines("int wl_size = (int)wl.size();",
                "if (wl_size == 0) break;",
                "int wl_next_size = 0;")

    _emit_relax_body(w, spec)
    if data:
        w.line("wl.assign(wl_next, wl_next + wl_next_size);")
    else:
        w.line("if (!changed) break;")
    if det:
        w.line("std::swap(val_in, val_out);")
    w.close()
    if det:
        w.raw(
            """
if (val_in != val.data())
  std::copy(val_in, val_in + g.nodes, val.data());
"""
        )
    w.close()

def _emit_initial_worklist(w: CodeWriter, spec: StyleSpec) -> None:
    """The data-driven styles' starting worklist (vertex or edge items)."""
    if spec.iteration is Iteration.VERTEX:
        if spec.flow is Flow.PULL:
            w.raw(
                """
static std::vector<int> initial_worklist(const Graph& g, int source) {
  if (!SOURCE_BASED) {
    std::vector<int> all(g.nodes);
    for (int v = 0; v < g.nodes; v++) all[v] = v;
    return all;
  }
  // Pull worklists hold vertices to *recompute*: the source's neighbors.
  return std::vector<int>(g.nbr_list.begin() + g.nbr_idx[source],
                          g.nbr_list.begin() + g.nbr_idx[source + 1]);
}
"""
            )
        else:
            w.raw(
                """
static std::vector<int> initial_worklist(const Graph& g, int source) {
  if (!SOURCE_BASED) {
    std::vector<int> all(g.nodes);
    for (int v = 0; v < g.nodes; v++) all[v] = v;
    return all;
  }
  return std::vector<int>{source};
}
"""
            )
    else:
        w.raw(
            """
static std::vector<int> initial_worklist(const Graph& g, int source) {
  std::vector<int> wl;
  if (!SOURCE_BASED) {
    wl.resize(g.edges);
    for (int e = 0; e < g.edges; e++) wl[e] = e;
  } else {
    for (int i = g.nbr_idx[source]; i < g.nbr_idx[source + 1]; i++)
      wl.push_back(i);
  }
  return wl;
}
"""
        )
