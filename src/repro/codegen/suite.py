"""Write the whole generated suite to disk (the Indigo2 artifact shape).

``generate_suite`` materializes one source file per program variant, laid
out by model and algorithm, plus a manifest and a Makefile for the CPU
variants (the CUDA ones need nvcc)::

    out/
      MANIFEST.tsv
      Makefile
      cuda/bfs/bfs-cuda-....cu
      openmp/bfs/bfs-openmp-....cpp
      cpp/bfs/bfs-cpp-....cpp
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..styles.axes import Algorithm, Model
from ..styles.combos import enumerate_specs
from ..styles.spec import StyleSpec
from .common import file_name
from .cpp import generate_cpp
from .cuda import generate_cuda
from .openmp import generate_openmp

__all__ = ["generate_source", "generate_suite", "SuiteManifest"]

_GENERATORS = {
    Model.CUDA: generate_cuda,
    Model.OPENMP: generate_openmp,
    Model.CPP_THREADS: generate_cpp,
}


def generate_source(spec: StyleSpec, *, data_bits: int = 32) -> str:
    """The complete source text of one program variant.

    ``data_bits`` selects the 32-bit (int/float — the versions the paper
    evaluates) or 64-bit (long long / double) data types; both are part of
    the Indigo2 artifact, which is why its file count (2,212) is twice the
    evaluated program count.
    """
    return _GENERATORS[spec.model](spec, data_bits=data_bits)


@dataclass(frozen=True)
class SuiteManifest:
    """What ``generate_suite`` wrote (keys are (spec, data_bits) pairs)."""

    root: Path
    files: Dict

    @property
    def count(self) -> int:
        return len(self.files)

    def by_model(self, model: Model) -> List[Path]:
        return [p for (s, _bits), p in self.files.items() if s.model is model]


_MAKEFILE = """\
# Build the generated CPU variants (CUDA files need nvcc -arch=<sm>).
CXX      ?= g++
CXXFLAGS ?= -O3
OMP_SRCS := $(wildcard openmp/*/*.cpp)
CPP_SRCS := $(wildcard cpp/*/*.cpp)

all: $(OMP_SRCS:.cpp=.bin) $(CPP_SRCS:.cpp=.bin)

openmp/%.bin: openmp/%.cpp
\t$(CXX) $(CXXFLAGS) -fopenmp $< -o $@

cpp/%.bin: cpp/%.cpp
\t$(CXX) $(CXXFLAGS) -pthread $< -o $@

clean:
\trm -f openmp/*/*.bin cpp/*/*.bin
"""


def generate_suite(
    out_dir: Union[str, Path],
    *,
    models: Iterable[Model] = tuple(Model),
    algorithms: Iterable[Algorithm] = tuple(Algorithm),
    data_bits: Iterable[int] = (32,),
    limit_per_pair: Optional[int] = None,
) -> SuiteManifest:
    """Write the suite's source files under ``out_dir``.

    ``limit_per_pair`` truncates each (algorithm, model) list — handy for
    sampling the suite without writing all ~1,700 files (or ~3,400 with
    ``data_bits=(32, 64)``, the full Indigo2-style artifact).
    """
    root = Path(out_dir)
    files: Dict = {}
    manifest_rows: List[str] = ["model\talgorithm\tbits\tfile\tstyle"]
    for model in models:
        for algorithm in algorithms:
            specs = enumerate_specs(algorithm, model)
            if limit_per_pair is not None:
                specs = specs[:limit_per_pair]
            sub = root / model.value / algorithm.value
            sub.mkdir(parents=True, exist_ok=True)
            for spec in specs:
                for bits in data_bits:
                    name = file_name(spec)
                    if bits != 32:
                        stem, dot, ext = name.rpartition(".")
                        name = f"{stem}-i64{dot}{ext}"
                    path = sub / name
                    path.write_text(generate_source(spec, data_bits=bits))
                    files[(spec, bits)] = path
                    manifest_rows.append(
                        f"{model.value}\t{algorithm.value}\t{bits}\t"
                        f"{path.relative_to(root)}\t{spec.label()}"
                    )
    root.mkdir(parents=True, exist_ok=True)
    (root / "MANIFEST.tsv").write_text("\n".join(manifest_rows) + "\n")
    (root / "Makefile").write_text(_MAKEFILE)
    return SuiteManifest(root=root, files=files)
