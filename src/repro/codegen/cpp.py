"""C++-threads source generation: one complete ``.cpp`` file per StyleSpec.

Constructs tracked per axis: explicit ``std::thread`` teams with blocked or
cyclic iteration assignment (Listing 13), ``std::atomic`` CAS-loop min for
RMW updates (the C++ advantage of Section 5.3.1 — no critical sections
needed), ``std::mutex`` critical-reduction vs. atomic-reduction vs.
per-thread partials (the C++ equivalent of Listing 11), worklists with
``fetch_add`` pushes and ``exchange`` stamps, push/pull relaxation, and
double buffering.
"""

from __future__ import annotations

from ..styles.axes import (
    Algorithm,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    Iteration,
    Update,
)
from ..styles.spec import StyleSpec
from .common import ALGORITHM_TITLES, CodeWriter
from .cpu_shared import (
    CPU_GRAPH,
    CPU_PREAMBLE,
    cost_expr,
    emit_serial_reference,
    emit_verification_main,
    hash_pri,
)

__all__ = ["generate_cpp"]

_THREAD_HARNESS = r"""
// ---------------------------------------------------------------------
// Thread team: launch `run(tid)` on NTHREADS std::threads and join.
// ---------------------------------------------------------------------
#ifndef NTHREADS
#define NTHREADS 16
#endif

template <typename F>
static void parallel_step(F&& run) {
  std::vector<std::thread> team;
  team.reserve(NTHREADS);
  for (int tid = 0; tid < NTHREADS; tid++) team.emplace_back(run, tid);
  for (auto& t : team) t.join();
}

// Atomic min via compare-exchange (C++ has no fetch_min).
static inline bool atomic_min(std::atomic<val_t>& cell, val_t value) {
  val_t old_val = cell.load(std::memory_order_relaxed);
  while (value < old_val) {
    if (cell.compare_exchange_weak(old_val, value)) return true;
  }
  return false;
}
"""


def _emit_schedule_loop(w: CodeWriter, spec: StyleSpec, count: str,
                        var: str = "item") -> None:
    """Listing 13: blocked (contiguous chunk) vs cyclic (round-robin)."""
    if spec.cpp_schedule is CppSchedule.BLOCKED:
        w.lines(
            f"const int beg_it = (int)((long long)tid * {count} / NTHREADS);",
            f"const int end_it = (int)((long long)(tid + 1) * {count} / NTHREADS);",
        )
        w.open(f"for (int {var} = beg_it; {var} < end_it; {var}++)")
    else:
        w.open(f"for (int {var} = tid; {var} < {count}; {var} += NTHREADS)")


def _emit_update(w: CodeWriter, spec: StyleSpec, target: str) -> None:
    det = spec.determinism is Determinism.DETERMINISTIC
    cell = f"{'val_out' if det else 'val'}[{target}]"
    if spec.update is Update.READ_MODIFY_WRITE:
        w.open(f"if (atomic_min({cell}, new_val))")
        w.line("changed.store(1, std::memory_order_relaxed);")
    else:
        w.line(f"const val_t old_val = {cell}.load(std::memory_order_relaxed);")
        w.open("if (new_val < old_val)")
        w.line(f"{cell}.store(new_val, std::memory_order_relaxed);")
        w.line("changed.store(1, std::memory_order_relaxed);")
    if spec.driver is Driver.DATA:
        _emit_push(w, spec, target)
    w.close()


def _emit_push(w: CodeWriter, spec: StyleSpec, target: str) -> None:
    vertex = spec.iteration is Iteration.VERTEX
    pull = spec.flow is Flow.PULL

    def enqueue(expr: str) -> None:
        if spec.dup is Dup.NODUP:
            w.open(f"if (stat[{expr}].exchange(itr) != itr)")
            w.line(f"wl_next[wl_next_size.fetch_add(1)] = {expr};")
            w.close()
        else:
            w.line(f"wl_next[wl_next_size.fetch_add(1)] = {expr};")

    if vertex and not pull:
        enqueue(target)
    elif vertex and pull:
        w.open(f"for (int k = g.nbr_idx[{target}]; k < g.nbr_idx[{target} + 1]; k++)")
        enqueue("g.nbr_list[k]")
        w.close()
    else:
        w.open(f"for (int k = g.nbr_idx[{target}]; k < g.nbr_idx[{target} + 1]; k++)")
        enqueue("k")
        w.close()


def _emit_relax(w: CodeWriter, spec: StyleSpec) -> None:
    alg = spec.algorithm
    data = spec.driver is Driver.DATA
    det = spec.determinism is Determinism.DETERMINISTIC
    pull = spec.flow is Flow.PULL
    read = "val_in" if det else "val"

    w.open(
        "static void compute(const Graph& g, std::vector<val_t>& result, int source)"
    )
    w.raw(
        """
std::vector<std::atomic<val_t>> val(g.nodes);
for (int v = 0; v < g.nodes; v++)
  val[v].store(SOURCE_BASED ? VAL_MAX : (val_t)v, std::memory_order_relaxed);
if (SOURCE_BASED) val[source].store(0, std::memory_order_relaxed);
"""
    )
    if det:
        w.raw(
            """
std::vector<std::atomic<val_t>> val2(g.nodes);
auto* val_in = val.data();
auto* val_out = val2.data();
"""
        )
    if data:
        w.raw(
            """
std::vector<int> wl = initial_worklist(g, source);
std::vector<int> wl_next_buf(g.edges + g.nodes);
std::vector<std::atomic<int>> stat_buf(g.nodes);
for (int v = 0; v < g.nodes; v++) stat_buf[v].store(-1);
int* wl_next = wl_next_buf.data();
auto* stat = stat_buf.data();
std::atomic<int> wl_next_size{0};
"""
        )
    w.open("for (int itr = 1; ; itr++)")
    w.line("std::atomic<int> changed{0};")
    if det:
        w.raw(
            """
for (int v = 0; v < g.nodes; v++)
  val_out[v].store(val_in[v].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
"""
        )
    if data:
        w.lines("const int wl_size = (int)wl.size();",
                "if (wl_size == 0) break;",
                "wl_next_size.store(0);")
    count = "wl_size" if data else (
        "g.nodes" if spec.iteration is Iteration.VERTEX else "g.edges"
    )
    w.open("parallel_step([&](int tid)")
    _emit_schedule_loop(w, spec, count)
    if spec.iteration is Iteration.VERTEX:
        w.line("const int v = " + ("wl[item];" if data else "item;"))
        w.open("for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)")
        w.line("const int u = g.nbr_list[i];")
        if pull:
            w.line(f"const val_t other = {read}[u].load(std::memory_order_relaxed);")
            w.line("if (other == VAL_MAX) continue;")
            w.line(f"const val_t new_val = other + {cost_expr(alg, 'i')};")
            _emit_update(w, spec, "v")
        else:
            w.line(f"const val_t mine = {read}[v].load(std::memory_order_relaxed);")
            w.line("if (mine == VAL_MAX) break;")
            w.line(f"const val_t new_val = mine + {cost_expr(alg, 'i')};")
            _emit_update(w, spec, "u")
        w.close()
    else:
        w.line("const int e = " + ("wl[item];" if data else "item;"))
        if pull:
            w.lines("const int v = g.src_list[e];", "const int u = g.dst_list[e];")
        else:
            w.lines("const int v = g.dst_list[e];", "const int u = g.src_list[e];")
        w.line(f"const val_t other = {read}[u].load(std::memory_order_relaxed);")
        w.open("if (other != VAL_MAX)")
        w.line(f"const val_t new_val = other + {cost_expr(alg, 'e')};")
        _emit_update(w, spec, "v")
        w.close()
    w.close()  # schedule loop
    w.close(");")  # parallel_step lambda
    if data:
        w.line("wl.assign(wl_next, wl_next + wl_next_size.load());")
    else:
        w.line("if (!changed.load()) break;")
    if det:
        w.line("std::swap(val_in, val_out);")
    w.close()  # iteration loop
    final = "val_in" if det else "val.data()"
    w.raw(
        f"""
auto* final_vals = {final};
for (int v = 0; v < g.nodes; v++)
  result[v] = final_vals[v].load(std::memory_order_relaxed);
"""
    )
    w.close()


def _emit_reduction_loop(w: CodeWriter, spec: StyleSpec, body: str,
                         acc_type: str, acc: str, count: str) -> None:
    """The C++ equivalents of Listing 11's reduction styles."""
    red = spec.cpu_reduction
    w.open("parallel_step([&](int tid)")
    if red is CpuReduction.CLAUSE:
        w.line(f"{acc_type} local_acc = 0;  // per-thread partial (clause equivalent)")
    _emit_schedule_loop(w, spec, count, var="v")
    w.raw(body)
    if red is CpuReduction.CLAUSE:
        w.line("local_acc += contribution;")
    elif red is CpuReduction.ATOMIC:
        w.line(f"atomic_fetch_add(&{acc}, contribution);")
    else:
        w.open("")
        w.line(f"std::lock_guard<std::mutex> lock({acc}_mutex);")
        w.line(f"{acc}_plain += contribution;")
        w.close()
    w.close()  # schedule loop
    if red is CpuReduction.CLAUSE:
        w.line(f"atomic_fetch_add(&{acc}, local_acc);")
    w.close(");")  # lambda


def _emit_pr(w: CodeWriter, spec: StyleSpec) -> None:
    det = spec.determinism is Determinism.DETERMINISTIC
    pull = spec.flow is Flow.PULL
    red_decl = {
        CpuReduction.ATOMIC: "std::atomic<rank_t> err{0};",
        CpuReduction.CLAUSE: "std::atomic<rank_t> err{0};",
        CpuReduction.CRITICAL: "rank_t err_plain = 0; std::mutex err_mutex;",
    }[spec.cpu_reduction]
    w.open("static void pagerank(const Graph& g, std::vector<rank_t>& rank)")
    if det:
        w.raw(
            """
std::vector<rank_t> rank2(g.nodes);
rank_t* rank_in = rank.data();
rank_t* rank_out = rank2.data();
"""
        )
        read, write = "rank_in", "rank_out"
    else:
        w.line("rank_t* rank_in = rank.data();  // in-place")
        read, write = "rank_in", "rank_in"
    w.open("for (int iter = 0; iter < 10000; iter++)")
    w.line(red_decl)
    if pull:
        body = f"""
rank_t sum = 0;
for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {{
  const int u = g.nbr_list[i];
  sum += {read}[u] / g.degree(u);
}}
const rank_t new_rank = (1 - DAMPING) / g.nodes + DAMPING * sum;
const rank_t contribution = fabs(new_rank - {read}[v]);
{write}[v] = new_rank;
"""
        _emit_reduction_loop(w, spec, body, "rank_t", "err", "g.nodes")
    else:
        w.raw(
            f"""
std::vector<std::atomic<rank_t>> next(g.nodes);
for (int v = 0; v < g.nodes; v++) next[v].store((rank_t)(1 - DAMPING) / g.nodes);
parallel_step([&](int tid) {{
  for (int v = tid; v < g.nodes; v += NTHREADS) {{
    if (!g.degree(v)) continue;
    const rank_t c = DAMPING * {read}[v] / g.degree(v);
    for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)
      atomic_fetch_add(&next[g.nbr_list[i]], c);
  }}
}});
"""
        )
        body = f"""
const rank_t contribution = fabs(next[v].load() - {read}[v]);
{write}[v] = next[v].load();
"""
        _emit_reduction_loop(w, spec, body, "rank_t", "err", "g.nodes")
    if det:
        w.line("std::swap(rank_in, rank_out);")
    err_read = {
        CpuReduction.ATOMIC: "err.load()",
        CpuReduction.CLAUSE: "err.load()",
        CpuReduction.CRITICAL: "err_plain",
    }[spec.cpu_reduction]
    w.line(f"if ({err_read} < TOLERANCE) break;")
    w.close()
    if det:
        w.raw(
            """
if (rank_in != rank.data())
  std::copy(rank_in, rank_in + g.nodes, rank.data());
"""
        )
    w.close()


def _emit_tc(w: CodeWriter, spec: StyleSpec) -> None:
    vertex = spec.iteration is Iteration.VERTEX
    count = "g.nodes" if vertex else "g.edges"
    red_decl = {
        CpuReduction.ATOMIC: "std::atomic<long long> total{0};",
        CpuReduction.CLAUSE: "std::atomic<long long> total{0};",
        CpuReduction.CRITICAL:
            "long long total_plain = 0; std::mutex total_mutex;",
    }[spec.cpu_reduction]
    w.raw(
        """
static long long merge_count(const Graph& g, int v, int u) {
  long long c = 0;
  int a = g.nbr_idx[v], b = g.nbr_idx[u];
  while (a < g.nbr_idx[v + 1] && b < g.nbr_idx[u + 1]) {
    const int x = g.nbr_list[a], y = g.nbr_list[b];
    if (x <= v) { a++; continue; }
    if (y <= u) { b++; continue; }
    if (x == y) { c++; a++; b++; }
    else if (x < y) a++; else b++;
  }
  return c;
}
"""
    )
    w.blank()
    w.open("static long long triangle_count(const Graph& g)")
    w.line(red_decl)
    if vertex:
        body = """
long long contribution = 0;
for (int j = g.nbr_idx[v]; j < g.nbr_idx[v + 1]; j++) {
  const int u = g.nbr_list[j];
  if (u <= v) continue;
  contribution += merge_count(g, v, u);
}
"""
    else:
        body = """
long long contribution = 0;
{
  const int s = g.src_list[v], d = g.dst_list[v];
  if (d > s) contribution = merge_count(g, s, d);
}
"""
    _emit_reduction_loop(w, spec, body, "long long", "total", count)
    if spec.cpu_reduction is CpuReduction.CRITICAL:
        w.line("return total_plain;")
    else:
        w.line("return total.load();")
    w.close()


def _emit_mis(w: CodeWriter, spec: StyleSpec) -> None:
    det = spec.determinism is Determinism.DETERMINISTIC
    data = spec.driver is Driver.DATA
    push = spec.flow is Flow.PUSH
    edge = spec.iteration is Iteration.EDGE
    read = "status_in" if det else "status_ptr"
    write = "status_out" if det else "status_ptr"
    mine = "g.dst_list[e]" if push else "g.src_list[e]"
    other = "g.src_list[e]" if push else "g.dst_list[e]"
    w.open("static void mis(const Graph& g, std::vector<signed char>& status)")
    w.raw(
        f"""
std::vector<signed char> status2(g.nodes, 0);
signed char* {read} = status.data();
signed char* {write if det else '_unused'} = {'status2.data()' if det else 'nullptr'};
"""
    )
    if edge:
        w.line("std::vector<signed char> blocked(g.nodes, 0);")
    if data:
        if edge:
            w.raw(
                """
std::vector<int> wl(g.edges);
for (int e = 0; e < g.edges; e++) wl[e] = e;
"""
            )
        else:
            w.raw(
                """
std::vector<int> wl(g.nodes);
for (int v = 0; v < g.nodes; v++) wl[v] = v;
"""
            )
    w.open("for (;;)")
    if det:
        w.line(f"std::copy({read}, {read} + g.nodes, {write});")
    w.line("std::atomic<int> changed{0};")
    if edge:
        # Phase 1 over edges (mirrors the CUDA edge kernel): each edge
        # excludes or blocks its "mine" endpoint; a serial joiner pass
        # then admits every unblocked undecided vertex.
        w.line("std::fill(blocked.begin(), blocked.end(), 0);")
        count = "(int)wl.size()" if data else "g.edges"
        w.open("parallel_step([&](int tid)")
        _emit_schedule_loop(w, spec, count)
        w.line("const int e = " + ("wl[item];" if data else "item;"))
        w.lines(f"const int mine = {mine};", f"const int other = {other};")
        w.open(f"if ({read}[mine] == 0)")
        w.line(f"if ({read}[other] == 1) "
               f"{{ {write}[mine] = 2; changed.store(1); }}")
        w.line(f"else if ({read}[other] == 0 && "
               "hash_pri(other) > hash_pri(mine)) blocked[mine] = 1;")
        w.close()  # undecided guard
        w.close()  # schedule loop
        w.close(");")  # lambda
        w.open("for (int v = 0; v < g.nodes; v++)")
        w.line(f"if ({write}[v] == 0 && !blocked[v]) "
               f"{{ {write}[v] = 1; changed.store(1); }}")
        w.close()
    else:
        count = "(int)wl.size()" if data else "g.nodes"
        w.open("parallel_step([&](int tid)")
        _emit_schedule_loop(w, spec, count)
        w.line("const int v = " + ("wl[item];" if data else "item;"))
        w.open(f"if ({read}[v] == 0)")
        w.raw(
            f"""
bool in_set = true;
for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++) {{
  const int u = g.nbr_list[i];
  if ({read}[u] == 1) {{ {write}[v] = 2; changed.store(1); in_set = false; break; }}
  if ({read}[u] == 0 && hash_pri(u) > hash_pri(v)) {{ in_set = false; break; }}
}}
"""
        )
        w.open("if (in_set)")
        w.lines(f"{write}[v] = 1;", "changed.store(1);")
        if push:
            w.open("for (int i = g.nbr_idx[v]; i < g.nbr_idx[v + 1]; i++)")
            w.line(f"if ({read}[g.nbr_list[i]] == 0) {write}[g.nbr_list[i]] = 2;")
            w.close()
        w.close()
        w.close()  # undecided guard
        w.close()  # schedule loop
        w.close(");")  # lambda
    if det:
        w.line(f"std::swap({read}, {write});")
    if data:
        if edge:
            w.raw(
                f"""
std::vector<int> next;
for (int e : wl) if ({read}[{mine}] == 0) next.push_back(e);
wl.swap(next);
if (wl.empty()) break;
"""
            )
        else:
            w.raw(
                f"""
std::vector<int> next;
for (int v : wl) if ({read}[v] == 0) next.push_back(v);
wl.swap(next);
if (wl.empty()) break;
"""
            )
    else:
        w.line("if (!changed.load()) break;")
    w.close()  # round loop
    if det:
        w.raw(
            f"""
if ({read} != status.data())
  std::copy({read}, {read} + g.nodes, status.data());
"""
        )
    w.close()


def _emit_initial_worklist(w: CodeWriter, spec: StyleSpec) -> None:
    if spec.iteration is Iteration.VERTEX:
        if spec.flow is Flow.PULL:
            w.raw(
                """
static std::vector<int> initial_worklist(const Graph& g, int source) {
  if (!SOURCE_BASED) {
    std::vector<int> all(g.nodes);
    for (int v = 0; v < g.nodes; v++) all[v] = v;
    return all;
  }
  return std::vector<int>(g.nbr_list.begin() + g.nbr_idx[source],
                          g.nbr_list.begin() + g.nbr_idx[source + 1]);
}
"""
            )
        else:
            w.raw(
                """
static std::vector<int> initial_worklist(const Graph& g, int source) {
  if (!SOURCE_BASED) {
    std::vector<int> all(g.nodes);
    for (int v = 0; v < g.nodes; v++) all[v] = v;
    return all;
  }
  return std::vector<int>{source};
}
"""
            )
    else:
        w.raw(
            """
static std::vector<int> initial_worklist(const Graph& g, int source) {
  std::vector<int> wl;
  if (!SOURCE_BASED) {
    wl.resize(g.edges);
    for (int e = 0; e < g.edges; e++) wl[e] = e;
  } else {
    for (int i = g.nbr_idx[source]; i < g.nbr_idx[source + 1]; i++)
      wl.push_back(i);
  }
  return wl;
}
"""
        )


_ATOMIC_DOUBLE_ADD = r"""
// fetch_add for std::atomic<double> / long long partials.
template <typename T>
static inline void atomic_fetch_add(std::atomic<T>* cell, T inc) {
  T old_val = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(old_val, old_val + inc)) {}
}
template <typename T>
static inline void atomic_fetch_add(std::atomic<T>& cell, T inc) {
  atomic_fetch_add(&cell, inc);
}
"""


def generate_cpp(spec: StyleSpec, *, data_bits: int = 32) -> str:
    """Generate the complete C++-threads source of one program variant.

    ``data_bits`` selects the value width (32: int/float as evaluated in
    the paper; 64: long long / double as also shipped by Indigo2).
    """
    if data_bits not in (32, 64):
        raise ValueError("data_bits must be 32 or 64")
    spec.validate()
    alg = spec.algorithm
    w = CodeWriter()
    styles = ", ".join(f"{k}={v}" for k, v in spec.describe().items()
                       if k not in ("algorithm", "model"))
    w.lines(
        "// " + "-" * 70,
        f"// {ALGORITHM_TITLES[alg]} — C++ threads",
        f"// style: {styles}",
        "// generated by repro.codegen (Indigo2-style program variant)",
        "// compile: g++ -O3 -pthread",
        "// " + "-" * 70,
    )
    w.raw(CPU_PREAMBLE)
    w.lines("#include <thread>", "#include <atomic>", "#include <mutex>")
    if data_bits == 32:
        w.lines("typedef int val_t;", "#define VAL_MAX INT_MAX")
    else:
        w.lines("typedef long long val_t;", "#define VAL_MAX LLONG_MAX")
    if alg is Algorithm.PR:
        if data_bits == 32:
            w.lines("typedef float rank_t;",
                    "#define DAMPING 0.85f", "#define TOLERANCE 1e-4f")
        else:
            w.lines("typedef double rank_t;",
                    "#define DAMPING 0.85", "#define TOLERANCE 1e-8")
    w.blank()
    w.raw(CPU_GRAPH)
    w.blank()
    w.raw(_THREAD_HARNESS)
    w.blank()
    if alg in (Algorithm.PR, Algorithm.TC):
        w.raw(_ATOMIC_DOUBLE_ADD)
        w.blank()
    if alg is Algorithm.MIS:
        w.raw(hash_pri())
        w.blank()
    emit_serial_reference(w, alg)
    w.blank()
    if alg in (Algorithm.BFS, Algorithm.SSSP, Algorithm.CC):
        if spec.driver is Driver.DATA:
            _emit_initial_worklist(w, spec)
            w.blank()
        _emit_relax(w, spec)
    elif alg is Algorithm.MIS:
        _emit_mis(w, spec)
    elif alg is Algorithm.PR:
        _emit_pr(w, spec)
    else:
        _emit_tc(w, spec)
    w.blank()
    emit_verification_main(w, alg)
    return w.render()
