"""Source-code generation: the Indigo2-artifact half of the reproduction.

Every :class:`~repro.styles.spec.StyleSpec` maps to a complete CUDA,
OpenMP, or C++-threads source file whose constructs mirror the paper's
Listings 1-13.  The generated CPU variants compile with stock g++ and
self-verify against their built-in serial reference; the CUDA variants
target nvcc on machines that have one.
"""

from .common import CodeWriter, file_name, guard_name
from .cpp import generate_cpp
from .cuda import generate_cuda
from .openmp import generate_openmp
from .suite import SuiteManifest, generate_source, generate_suite

__all__ = [
    "CodeWriter",
    "file_name",
    "guard_name",
    "generate_cuda",
    "generate_openmp",
    "generate_cpp",
    "generate_source",
    "generate_suite",
    "SuiteManifest",
]
