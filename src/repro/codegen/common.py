"""Shared infrastructure for the source-code generators.

The Indigo2 artifact is, at heart, a code generator: hundreds of CUDA /
OpenMP / C++-threads source files produced from style templates (the
paper's Section 4.1: "we automated the code-generation process and use
configuration files to select the desired versions").  This subpackage
reproduces that half of the artifact: every :class:`StyleSpec` maps to a
complete, self-contained source file whose constructs mirror the paper's
Listings 1-13 — CSR or COO traversal, worklists with or without stamps,
push/pull relaxation, atomicMin vs. read-check-write, double buffering,
persistent grids, warp/block strip-mining, ``cuda::atomic``, reduction
styles, and OpenMP/C++ scheduling.

The generated code targets real toolchains (nvcc / g++), so the suite can
be compiled and measured on physical hardware where available — the
simulator and the generator share the same StyleSpec vocabulary.
"""

from __future__ import annotations

from typing import List

from ..styles.axes import Algorithm
from ..styles.spec import StyleSpec

__all__ = ["CodeWriter", "guard_name", "file_name", "ALGORITHM_TITLES"]

ALGORITHM_TITLES = {
    Algorithm.BFS: "Breadth-First Search",
    Algorithm.SSSP: "Single-Source Shortest Path (Bellman-Ford)",
    Algorithm.CC: "Connected Components (min-label propagation)",
    Algorithm.MIS: "Maximal Independent Set (priority Luby)",
    Algorithm.PR: "PageRank",
    Algorithm.TC: "Triangle Counting (forward-edge merge)",
}


class CodeWriter:
    """A tiny indentation-aware source emitter."""

    def __init__(self, indent: str = "  "):
        self._indent = indent
        self._level = 0
        self._lines: List[str] = []

    def line(self, text: str = "") -> "CodeWriter":
        if text:
            self._lines.append(self._indent * self._level + text)
        else:
            self._lines.append("")
        return self

    def lines(self, *texts: str) -> "CodeWriter":
        for text in texts:
            self.line(text)
        return self

    def blank(self) -> "CodeWriter":
        return self.line()

    def open(self, text: str) -> "CodeWriter":
        """Emit ``text {`` and indent."""
        self.line(text + " {")
        self._level += 1
        return self

    def close(self, suffix: str = "") -> "CodeWriter":
        """Dedent and emit ``}``(+suffix)."""
        self._level -= 1
        if self._level < 0:
            raise ValueError("unbalanced close()")
        self.line("}" + suffix)
        return self

    def raw(self, block: str) -> "CodeWriter":
        """Emit a pre-formatted multi-line block at the current level."""
        for text in block.strip("\n").splitlines():
            self.line(text) if text.strip() else self.blank()
        return self

    def render(self) -> str:
        if self._level != 0:
            raise ValueError("unbalanced blocks at render time")
        return "\n".join(self._lines) + "\n"


def guard_name(spec: StyleSpec) -> str:
    """An identifier-safe name for one variant."""
    return spec.label().replace("-", "_").upper()


def file_name(spec: StyleSpec) -> str:
    """The on-disk name of one generated variant."""
    ext = {"cuda": "cu", "openmp": "cpp", "cpp": "cpp"}[spec.model.value]
    return f"{spec.label()}.{ext}"
