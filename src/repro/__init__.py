"""repro: a reproduction of "Choosing the Best Parallelization and
Implementation Styles for Graph Analytics Codes" (SC '23).

The package executes the Indigo2-style program variants — six graph
algorithms combined with the paper's 13 parallelization/implementation
style axes — on deterministic analytic machine models of the paper's
testbed (two GPUs, two CPUs), and regenerates every table and figure of
the evaluation.

Quick start::

    from repro import graph, styles, machine
    from repro.runtime import Launcher

    g = graph.load_dataset("USA-road-d.NY", scale="tiny")
    spec = styles.enumerate_specs(styles.Algorithm.BFS, styles.Model.CUDA)[0]
    result = Launcher().run(spec, g, machine.RTX_3090)
    print(result.throughput_ges)
"""

from . import codegen, graph, kernels, machine, runtime, styles

__version__ = "1.0.0"

__all__ = [
    "codegen",
    "graph",
    "kernels",
    "machine",
    "runtime",
    "styles",
    "__version__",
]
