"""The 13 parallelization/implementation style axes (paper Section 2).

Axes split into two groups that the runtime treats differently:

* **semantic axes** change what the program computes per step (which items
  are processed, in which direction data flows, how racy updates resolve,
  how many iterations convergence takes): iteration, driver, worklist
  duplication, flow, update, determinism.
* **mapping axes** change only how the same execution is laid onto the
  machine (granularity, persistence, atomic flavor, reduction style,
  scheduling).  The runtime executes each semantic combination once per
  graph and re-times the resulting trace for every mapping combination —
  exactly the "hold everything else fixed" methodology of Section 5.
"""

from __future__ import annotations

import enum

__all__ = [
    "Algorithm",
    "Model",
    "Iteration",
    "Driver",
    "Dup",
    "Flow",
    "Update",
    "Determinism",
    "Persistence",
    "Granularity",
    "AtomicFlavor",
    "GpuReduction",
    "CpuReduction",
    "OmpSchedule",
    "CppSchedule",
    "SEMANTIC_AXES",
    "MAPPING_AXES",
    "AXIS_FIELDS",
]


class Algorithm(enum.Enum):
    """The 6 graph problems of Table 1."""

    CC = "cc"  # Connected Components (connectivity)
    MIS = "mis"  # Maximal Independent Set (covering)
    PR = "pr"  # PageRank (eigenvector)
    TC = "tc"  # Triangle Counting (substructure)
    BFS = "bfs"  # Breadth-First Search (shortest path)
    SSSP = "sssp"  # Single-Source Shortest Path (shortest path)


class Model(enum.Enum):
    """The 3 programming models (Section 2)."""

    CUDA = "cuda"
    OPENMP = "openmp"
    CPP_THREADS = "cpp"

    @property
    def is_gpu(self) -> bool:
        return self is Model.CUDA


class Iteration(enum.Enum):
    """Section 2.1: iterate over vertices (CSR) or edges (COO)."""

    VERTEX = "vertex"
    EDGE = "edge"


class Driver(enum.Enum):
    """Section 2.2: process all elements or only a worklist."""

    TOPOLOGY = "topology"
    DATA = "data"


class Dup(enum.Enum):
    """Section 2.3: allow duplicate items on the worklist or not."""

    DUP = "dup"
    NODUP = "nodup"


class Flow(enum.Enum):
    """Section 2.4: push updates to neighbors or pull from them."""

    PUSH = "push"
    PULL = "pull"


class Update(enum.Enum):
    """Section 2.5: plain read+conditional-write vs atomic RMW."""

    READ_WRITE = "rw"
    READ_MODIFY_WRITE = "rmw"


class Determinism(enum.Enum):
    """Section 2.6: two-array (internally deterministic) vs in-place."""

    DETERMINISTIC = "det"
    NON_DETERMINISTIC = "nondet"


class Persistence(enum.Enum):
    """Section 2.7 (GPU only): resident grid vs one thread per item."""

    PERSISTENT = "persistent"
    NON_PERSISTENT = "nonpersistent"


class Granularity(enum.Enum):
    """Section 2.8 (GPU only): unit that owns one work item's inner loop."""

    THREAD = "thread"
    WARP = "warp"
    BLOCK = "block"


class AtomicFlavor(enum.Enum):
    """Section 2.9 (CUDA only): classic atomics vs default cuda::atomic."""

    ATOMIC = "atomic"
    CUDA_ATOMIC = "cudaatomic"


class GpuReduction(enum.Enum):
    """Section 2.10.1 (GPU, PR/TC only)."""

    GLOBAL_ADD = "global_add"
    BLOCK_ADD = "block_add"
    REDUCTION_ADD = "reduction_add"


class CpuReduction(enum.Enum):
    """Section 2.10.2 (CPU, PR/TC only).

    ``CLAUSE`` is OpenMP's reduction clause; the C++-threads equivalent is
    a per-thread private partial combined at join, which has the same cost
    structure (private accumulation + one combine per thread).
    """

    ATOMIC = "atomic_red"
    CRITICAL = "critical_red"
    CLAUSE = "clause_red"


class OmpSchedule(enum.Enum):
    """Section 2.11 (OpenMP only)."""

    DEFAULT = "default"
    DYNAMIC = "dynamic"


class CppSchedule(enum.Enum):
    """Section 2.12 (C++ threads only)."""

    BLOCKED = "blocked"
    CYCLIC = "cyclic"


#: StyleSpec field name -> axis enum, for the axes that alter the executed
#: computation.
SEMANTIC_AXES = {
    "iteration": Iteration,
    "driver": Driver,
    "dup": Dup,
    "flow": Flow,
    "update": Update,
    "determinism": Determinism,
}

#: StyleSpec field name -> axis enum, for the machine-mapping axes.
MAPPING_AXES = {
    "persistence": Persistence,
    "granularity": Granularity,
    "atomic_flavor": AtomicFlavor,
    "gpu_reduction": GpuReduction,
    "cpu_reduction": CpuReduction,
    "omp_schedule": OmpSchedule,
    "cpp_schedule": CppSchedule,
}

#: All axis fields in declaration order.
AXIS_FIELDS = {**SEMANTIC_AXES, **MAPPING_AXES}
