"""StyleSpec: one fully-specified program variant.

A ``StyleSpec`` is the Python-native equivalent of one Indigo2 source file:
an algorithm, a programming model, and a value for every style axis that
applies to that (algorithm, model) pair.  Validation enforces the paper's
Table 2 applicability matrix plus the combination constraints of
Section 5 (see :mod:`repro.styles.applicability`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from .axes import (
    Algorithm,
    AtomicFlavor,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    GpuReduction,
    Granularity,
    Iteration,
    Model,
    OmpSchedule,
    Persistence,
    Update,
)

__all__ = ["StyleSpec", "SemanticKey"]


@dataclass(frozen=True)
class StyleSpec:
    """A single program variant (algorithm x model x style combination).

    Axis fields that do not apply to the given algorithm/model are ``None``.
    Use :meth:`validate` (or construct through
    :func:`repro.styles.combos.enumerate_specs`) to get a checked spec.
    """

    algorithm: Algorithm
    model: Model
    # Semantic axes -----------------------------------------------------
    iteration: Iteration = Iteration.VERTEX
    driver: Driver = Driver.TOPOLOGY
    dup: Optional[Dup] = None
    flow: Optional[Flow] = None
    update: Optional[Update] = None
    determinism: Determinism = Determinism.NON_DETERMINISTIC
    # Mapping axes ------------------------------------------------------
    persistence: Optional[Persistence] = None
    granularity: Optional[Granularity] = None
    atomic_flavor: Optional[AtomicFlavor] = None
    gpu_reduction: Optional[GpuReduction] = None
    cpu_reduction: Optional[CpuReduction] = None
    omp_schedule: Optional[OmpSchedule] = None
    cpp_schedule: Optional[CppSchedule] = None

    # ------------------------------------------------------------------
    def validate(self) -> "StyleSpec":
        """Raise ``ValueError`` if this combination is not in the suite."""
        from .applicability import check_spec  # late import avoids a cycle

        check_spec(self)
        return self

    def semantic_key(self) -> "SemanticKey":
        """The part of the spec that determines the executed computation."""
        return SemanticKey(
            algorithm=self.algorithm,
            iteration=self.iteration,
            driver=self.driver,
            dup=self.dup,
            flow=self.flow,
            update=self.update,
            determinism=self.determinism,
        )

    def with_axis(self, **changes) -> "StyleSpec":
        """Return a copy with the given axis fields replaced."""
        return replace(self, **changes)

    def axis_value(self, field_name: str):
        """Read an axis value by field name (used by the ratio harness)."""
        return getattr(self, field_name)

    def describe(self) -> Dict[str, str]:
        """Human-readable axis map with unset axes omitted."""
        out: Dict[str, str] = {
            "algorithm": self.algorithm.value,
            "model": self.model.value,
        }
        for f in fields(self):
            if f.name in ("algorithm", "model"):
                continue
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = value.value
        return out

    def label(self) -> str:
        """Compact identifier, Indigo2-file-name style."""
        parts = [self.algorithm.value, self.model.value]
        for f in fields(self):
            if f.name in ("algorithm", "model"):
                continue
            value = getattr(self, f.name)
            if value is not None:
                parts.append(value.value)
        return "-".join(parts)


@dataclass(frozen=True)
class SemanticKey:
    """Hashable identity of the executed computation.

    Two specs with equal semantic keys produce identical execution traces on
    the same graph; the runtime uses this to cache traces across mapping
    variants (granularity, persistence, atomic flavor, reductions and
    scheduling do not change what is computed).
    """

    algorithm: Algorithm
    iteration: Iteration
    driver: Driver
    dup: Optional[Dup]
    flow: Optional[Flow]
    update: Optional[Update]
    determinism: Determinism
