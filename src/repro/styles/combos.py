"""Enumerate the program variants of the suite (paper Table 3).

The paper's exact per-algorithm version lists come from Indigo2's private
configuration files; this module implements the documented reconstruction
described in DESIGN.md Section 5.  The reconstruction reproduces the paper's
PR (54) and TC (72) CUDA counts exactly and lands within ~15% of the totals
for the other algorithms; :func:`table3_counts` reports both side by side.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .applicability import ALLOWED, check_spec, has_reduction
from .axes import (
    Algorithm,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    GpuReduction,
    Granularity,
    Iteration,
    Model,
    OmpSchedule,
    Persistence,
    Update,
)
from .spec import StyleSpec

__all__ = [
    "semantic_combinations",
    "mapping_combinations",
    "enumerate_specs",
    "enumerate_all",
    "count_specs",
    "table3_counts",
    "PAPER_TABLE3",
]

#: The paper's Table 3 (32-bit versions evaluated), for comparison reports.
PAPER_TABLE3: Dict[Model, Dict[Algorithm, int]] = {
    Model.CUDA: {
        Algorithm.CC: 168,
        Algorithm.MIS: 112,
        Algorithm.PR: 54,
        Algorithm.TC: 72,
        Algorithm.BFS: 180,
        Algorithm.SSSP: 168,
    },
    Model.OPENMP: {
        Algorithm.CC: 36,
        Algorithm.MIS: 36,
        Algorithm.PR: 18,
        Algorithm.TC: 12,
        Algorithm.BFS: 38,
        Algorithm.SSSP: 36,
    },
    Model.CPP_THREADS: {
        Algorithm.CC: 36,
        Algorithm.MIS: 36,
        Algorithm.PR: 18,
        Algorithm.TC: 12,
        Algorithm.BFS: 38,
        Algorithm.SSSP: 36,
    },
}


def _driver_flow_combos(
    alg: Algorithm, iteration: Iteration
) -> List[Tuple[Driver, Optional[Dup], Optional[Flow]]]:
    """(driver, dup, flow) triples allowed for an algorithm and iteration.

    Topology-driven codes exist for every applicable flow; data-driven
    codes exist once per allowed duplication style and flow, except that
    edge-based data-driven relaxation codes are push-only (the pull
    variant keeps a *vertex* "recompute" worklist — see applicability).
    """
    table = ALLOWED[alg]
    combos: List[Tuple[Driver, Optional[Dup], Optional[Flow]]] = []
    flows = table["flow"] or (None,)
    if Driver.TOPOLOGY in table["driver"]:
        for flow in flows:
            combos.append((Driver.TOPOLOGY, None, flow))
    if Driver.DATA in table["driver"]:
        data_flows: Tuple = flows
        if iteration is Iteration.EDGE and alg is not Algorithm.MIS and table["flow"]:
            data_flows = (Flow.PUSH,)
        for dup in table["dup"] or (None,):
            if dup is None and table["dup"]:
                continue
            for flow in data_flows:
                combos.append((Driver.DATA, dup, flow))
    return combos


def _update_det_combos(
    alg: Algorithm, flow: Optional[Flow]
) -> List[Tuple[Optional[Update], Determinism]]:
    """(update, determinism) pairs allowed for an algorithm and flow.

    The deterministic double-buffer form requires RMW whenever there can be
    multiple writers (push flow), so ``rw + det + push`` is pruned;
    PR push is deterministic-only (Section 5.6).
    """
    table = ALLOWED[alg]
    updates = table["update"] or (None,)
    dets = table["determinism"]
    out = []
    for update, det in itertools.product(updates, dets):
        if (
            det is Determinism.DETERMINISTIC
            and update is Update.READ_WRITE
            and flow is Flow.PUSH
        ):
            continue
        if (
            alg is Algorithm.PR
            and flow is Flow.PUSH
            and det is Determinism.NON_DETERMINISTIC
        ):
            continue
        out.append((update, det))
    return out


def semantic_combinations(alg: Algorithm, model: Model) -> Iterator[StyleSpec]:
    """All semantic-axis combinations (mapping axes left unset)."""
    table = ALLOWED[alg]
    for iteration in table["iteration"]:
        for driver, dup, flow in _driver_flow_combos(alg, iteration):
            for update, det in _update_det_combos(alg, flow):
                yield StyleSpec(
                    algorithm=alg,
                    model=model,
                    iteration=iteration,
                    driver=driver,
                    dup=dup,
                    flow=flow,
                    update=update,
                    determinism=det,
                )


def _granularities(alg: Algorithm, iteration: Iteration) -> Tuple[Granularity, ...]:
    """Granularities with an inner loop to strip-mine (see applicability)."""
    if iteration is Iteration.VERTEX or alg is Algorithm.TC:
        return (Granularity.THREAD, Granularity.WARP, Granularity.BLOCK)
    return (Granularity.THREAD,)


def mapping_combinations(
    semantic: StyleSpec,
) -> Iterator[StyleSpec]:
    """Expand one semantic spec into all its mapping variants."""
    alg, model = semantic.algorithm, semantic.model
    if model is Model.CUDA:
        grans = _granularities(alg, semantic.iteration)
        flavors = ALLOWED[alg]["atomic_flavor"]
        reductions: Tuple = tuple(GpuReduction) if has_reduction(alg) else (None,)
        for gran, persist, flavor, red in itertools.product(
            grans, Persistence, flavors, reductions
        ):
            yield semantic.with_axis(
                granularity=gran,
                persistence=persist,
                atomic_flavor=flavor,
                gpu_reduction=red,
            )
    elif model is Model.OPENMP:
        reductions = tuple(CpuReduction) if has_reduction(alg) else (None,)
        for sched, red in itertools.product(OmpSchedule, reductions):
            yield semantic.with_axis(omp_schedule=sched, cpu_reduction=red)
    else:  # C++ threads
        reductions = tuple(CpuReduction) if has_reduction(alg) else (None,)
        for sched, red in itertools.product(CppSchedule, reductions):
            yield semantic.with_axis(cpp_schedule=sched, cpu_reduction=red)


@lru_cache(maxsize=None)
def _enumerate_specs_cached(alg: Algorithm, model: Model) -> Tuple[StyleSpec, ...]:
    specs: List[StyleSpec] = []
    for semantic in semantic_combinations(alg, model):
        for spec in mapping_combinations(semantic):
            check_spec(spec)
            specs.append(spec)
    return tuple(specs)


def enumerate_specs(alg: Algorithm, model: Model) -> List[StyleSpec]:
    """All validated program variants for one (algorithm, model) pair.

    The enumeration is deterministic, so it is memoized per pair; callers
    get a fresh list over the shared (immutable) spec objects.
    """
    return list(_enumerate_specs_cached(alg, model))


def enumerate_all(
    models: Iterable[Model] = tuple(Model),
    algorithms: Iterable[Algorithm] = tuple(Algorithm),
) -> List[StyleSpec]:
    """The full suite across the requested models and algorithms."""
    return [
        spec
        for model in models
        for alg in algorithms
        for spec in enumerate_specs(alg, model)
    ]


def count_specs() -> Dict[Model, Dict[Algorithm, int]]:
    """Our per-(model, algorithm) version counts (our Table 3)."""
    return {
        model: {alg: len(enumerate_specs(alg, model)) for alg in Algorithm}
        for model in Model
    }


def table3_counts() -> List[Tuple[str, str, int, int]]:
    """Rows of (model, algorithm, ours, paper) for the Table 3 report."""
    ours = count_specs()
    rows = []
    for model in Model:
        for alg in Algorithm:
            rows.append(
                (model.value, alg.value, ours[model][alg], PAPER_TABLE3[model][alg])
            )
    return rows
