"""Table 2 applicability matrix and combination constraints.

The paper's Table 2 lists which style options exist for each algorithm; the
text of Sections 2 and 5 adds combination rules (e.g. CudaAtomic has no
float support, so no PR; non-deterministic PR exists only for the pull
flow).  This module encodes both and is the single source of truth used by
spec validation and by the enumerator.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from .axes import (
    Algorithm,
    AtomicFlavor,
    Determinism,
    Driver,
    Dup,
    Flow,
    Granularity,
    Iteration,
    Model,
    Update,
)
from .spec import StyleSpec

__all__ = [
    "ALLOWED",
    "allowed_options",
    "check_spec",
    "uses_worklist",
    "has_reduction",
    "applicability_table",
]

_A = Algorithm

#: Table 2, transcribed: algorithm -> axis field -> tuple of allowed options.
#: An empty tuple means the axis does not apply (the spec field must be
#: ``None`` or, for always-present axes, is not varied).
ALLOWED: Dict[Algorithm, Dict[str, Tuple]] = {
    _A.CC: {
        "iteration": (Iteration.VERTEX, Iteration.EDGE),
        "driver": (Driver.TOPOLOGY, Driver.DATA),
        "dup": (Dup.DUP, Dup.NODUP),
        "flow": (Flow.PUSH, Flow.PULL),
        "update": (Update.READ_WRITE, Update.READ_MODIFY_WRITE),
        "determinism": (Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC),
        "atomic_flavor": (AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC),
        "reduction": (),
    },
    _A.MIS: {
        "iteration": (Iteration.VERTEX, Iteration.EDGE),
        "driver": (Driver.TOPOLOGY, Driver.DATA),
        "dup": (Dup.NODUP,),
        "flow": (Flow.PUSH, Flow.PULL),
        "update": (Update.READ_MODIFY_WRITE,),
        "determinism": (Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC),
        "atomic_flavor": (AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC),
        "reduction": (),
    },
    _A.PR: {
        "iteration": (Iteration.VERTEX,),
        "driver": (Driver.TOPOLOGY,),
        "dup": (),
        "flow": (Flow.PUSH, Flow.PULL),
        "update": (Update.READ_MODIFY_WRITE,),
        "determinism": (Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC),
        # CudaAtomic does not support floats (Section 5.1), so PR keeps the
        # classic Atomic flavor only.
        "atomic_flavor": (AtomicFlavor.ATOMIC,),
        "reduction": ("pr",),
    },
    _A.TC: {
        "iteration": (Iteration.VERTEX, Iteration.EDGE),
        "driver": (Driver.TOPOLOGY,),
        "dup": (),
        # Table 2 nominally lists push for TC, but Section 5.4 states "TC
        # does not support this style": the counting kernel has no vertex
        # data flow.  We treat the axis as not applicable.
        "flow": (),
        "update": (Update.READ_MODIFY_WRITE,),
        "determinism": (Determinism.DETERMINISTIC,),
        "atomic_flavor": (AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC),
        "reduction": ("tc",),
    },
    _A.BFS: {
        "iteration": (Iteration.VERTEX, Iteration.EDGE),
        "driver": (Driver.TOPOLOGY, Driver.DATA),
        "dup": (Dup.DUP, Dup.NODUP),
        "flow": (Flow.PUSH, Flow.PULL),
        "update": (Update.READ_WRITE, Update.READ_MODIFY_WRITE),
        "determinism": (Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC),
        "atomic_flavor": (AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC),
        "reduction": (),
    },
    _A.SSSP: {
        "iteration": (Iteration.VERTEX, Iteration.EDGE),
        "driver": (Driver.TOPOLOGY, Driver.DATA),
        "dup": (Dup.DUP, Dup.NODUP),
        "flow": (Flow.PUSH, Flow.PULL),
        "update": (Update.READ_WRITE, Update.READ_MODIFY_WRITE),
        "determinism": (Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC),
        "atomic_flavor": (AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC),
        "reduction": (),
    },
}


def uses_worklist(spec: StyleSpec) -> bool:
    """True when the spec maintains a worklist (data-driven codes)."""
    return spec.driver is Driver.DATA


def has_reduction(algorithm: Algorithm) -> bool:
    """True for the two algorithms with a sum-reduction axis (PR, TC)."""
    return bool(ALLOWED[algorithm]["reduction"])


def allowed_options(algorithm: Algorithm, axis: str) -> Tuple:
    """The Table 2 options of an axis for an algorithm."""
    try:
        return ALLOWED[algorithm][axis]
    except KeyError as exc:
        raise KeyError(f"unknown axis {axis!r}") from exc


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@lru_cache(maxsize=None)
def check_spec(spec: StyleSpec) -> None:
    """Validate one spec against Table 2 plus the combination rules.

    Raises ``ValueError`` with a specific message on the first violation.
    Validation is pure over the (frozen, hashable) spec, so successful
    checks are memoized — sweeps revalidate the same ~1100 specs once per
    block otherwise.  Failures raise anew on every call (``lru_cache``
    does not cache exceptions), and the cache is bounded by the finite
    spec space.
    """
    alg, model = spec.algorithm, spec.model
    table = ALLOWED[alg]

    # --- Per-axis applicability (Table 2) -----------------------------
    _require(
        spec.iteration in table["iteration"],
        f"{alg.value}: iteration style {spec.iteration} not applicable",
    )
    _require(
        spec.driver in table["driver"],
        f"{alg.value}: driver style {spec.driver} not applicable",
    )
    if spec.driver is Driver.DATA:
        _require(
            spec.dup in table["dup"],
            f"{alg.value}: worklist duplication {spec.dup} not applicable",
        )
    else:
        _require(spec.dup is None, "dup/nodup applies only to data-driven codes")

    if table["flow"]:
        _require(
            spec.flow in table["flow"],
            f"{alg.value}: flow style {spec.flow} not applicable",
        )
    else:
        _require(spec.flow is None, f"{alg.value} has no push/pull axis")

    if table["update"]:
        _require(
            spec.update in table["update"],
            f"{alg.value}: update style {spec.update} not applicable",
        )
    _require(
        spec.determinism in table["determinism"],
        f"{alg.value}: determinism style {spec.determinism} not applicable",
    )

    # --- Combination rules (Sections 2 and 5) -------------------------
    # Data-driven pull codes keep a "recompute me" vertex worklist and
    # push all neighbors of updated vertices onto it — the "useless items"
    # Section 2.4 alludes to.  That worklist is a vertex concept: for the
    # relaxation algorithms the edge-based data-driven codes are
    # push-flow only (an edge worklist has no pull orientation).
    if (
        spec.driver is Driver.DATA
        and spec.flow is Flow.PULL
        and spec.iteration is Iteration.EDGE
        and alg is not Algorithm.MIS
    ):
        raise ValueError("edge-based data-driven relaxation codes are push-flow")

    # Deterministic double-buffer codes with multiple writers need RMW on
    # the write buffer; plain read-write would silently drop updates.
    if (
        spec.determinism is Determinism.DETERMINISTIC
        and spec.update is Update.READ_WRITE
        and spec.flow is Flow.PUSH
    ):
        raise ValueError("deterministic push codes require read-modify-write")

    # PR's push-style codes exist only in deterministic form (Section 5.6).
    if alg is Algorithm.PR and spec.flow is Flow.PUSH:
        _require(
            spec.determinism is Determinism.DETERMINISTIC,
            "PR push-style codes are deterministic only (Section 5.6)",
        )

    # --- Model-specific mapping axes -----------------------------------
    if model is Model.CUDA:
        _require(spec.persistence is not None, "CUDA codes set persistence")
        _require(spec.granularity is not None, "CUDA codes set granularity")
        _require(
            spec.atomic_flavor in table["atomic_flavor"],
            f"{alg.value}: atomic flavor {spec.atomic_flavor} not applicable",
        )
        _require(spec.omp_schedule is None, "omp_schedule is OpenMP-only")
        _require(spec.cpp_schedule is None, "cpp_schedule is C++-threads-only")
        _require(spec.cpu_reduction is None, "cpu_reduction is CPU-only")
        # Warp/block granularity requires an inner loop to strip-mine.
        # Vertex-based codes always have one (the neighbor loop); edge-based
        # codes have one only in TC (the per-edge intersection).
        if spec.iteration is Iteration.EDGE and alg is not Algorithm.TC:
            _require(
                spec.granularity is Granularity.THREAD,
                "edge-based codes without an inner loop are thread-granularity",
            )
        if has_reduction(alg):
            _require(spec.gpu_reduction is not None, f"{alg.value} CUDA codes set gpu_reduction")
        else:
            _require(spec.gpu_reduction is None, f"{alg.value} has no reduction axis")
    else:
        for field_name in ("persistence", "granularity", "atomic_flavor", "gpu_reduction"):
            _require(
                getattr(spec, field_name) is None,
                f"{field_name} applies only to CUDA codes",
            )
        if has_reduction(alg):
            _require(
                spec.cpu_reduction is not None,
                f"{alg.value} CPU codes set cpu_reduction",
            )
        else:
            _require(spec.cpu_reduction is None, f"{alg.value} has no reduction axis")
        if model is Model.OPENMP:
            _require(spec.omp_schedule is not None, "OpenMP codes set omp_schedule")
            _require(spec.cpp_schedule is None, "cpp_schedule is C++-threads-only")
        else:  # C++ threads
            _require(spec.cpp_schedule is not None, "C++ codes set cpp_schedule")
            _require(spec.omp_schedule is None, "omp_schedule is OpenMP-only")


def applicability_table() -> Dict[str, Dict[str, str]]:
    """Render Table 2 as nested dicts of '+'/'-' strings (for the bench)."""
    axes_rows = {
        "Vertex-based, edge-based": ("iteration", (Iteration.VERTEX, Iteration.EDGE)),
        "Topology-driven, data-driven": ("driver", (Driver.TOPOLOGY, Driver.DATA)),
        "Duplicates in WL, no duplicates in WL": ("dup", (Dup.DUP, Dup.NODUP)),
        "Push, pull": ("flow", (Flow.PUSH, Flow.PULL)),
        "Read-write, read-modify-write": (
            "update",
            (Update.READ_WRITE, Update.READ_MODIFY_WRITE),
        ),
        "Deterministic, non-deterministic": (
            "determinism",
            (Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC),
        ),
        "Atomic, CudaAtomic": (
            "atomic_flavor",
            (AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC),
        ),
    }
    out: Dict[str, Dict[str, str]] = {}
    for row_name, (axis, options) in axes_rows.items():
        row = {}
        for alg in Algorithm:
            allowed = ALLOWED[alg][axis]
            row[alg.name] = ", ".join(
                "+" if opt in allowed else "-" for opt in options
            )
        out[row_name] = row
    reduction_row = {
        alg.name: "+, +, +" if has_reduction(alg) else "-, -, -"
        for alg in Algorithm
    }
    out["Global-add, block-add, reduction-add"] = dict(reduction_row)
    out["Atomic-red., critical-red., clause-red."] = dict(reduction_row)
    all_plus2 = {alg.name: "+, +" for alg in Algorithm}
    out["Persistent, non-persistent"] = dict(all_plus2)
    out["Thread, warp, block"] = {alg.name: "+, +, +" for alg in Algorithm}
    out["Default scheduling, dynamic scheduling"] = dict(all_plus2)
    out["Blocked, cyclic"] = dict(all_plus2)
    return out
