"""Shared kernel machinery.

The kernels in this package *execute* their algorithm with the exact
semantics of the selected style combination (vectorized over numpy arrays)
while recording an :class:`~repro.machine.trace.ExecutionTrace`.

Two execution details are fixed here:

* ``INF`` — the "unreached" distance sentinel (large but overflow-safe
  under one edge-weight addition).
* ``WAVE`` — the number of work items the simulator retires between
  visibility points for the *non-deterministic* (in-place) styles.  Real
  hardware executes a launch in waves of resident threads; updates written
  by earlier waves are visible to later ones, which is precisely the
  within-iteration propagation that makes the internally non-deterministic
  style converge in fewer iterations (Section 2.6).  The simulator uses a
  fixed wave size so traces are identical across devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..machine.trace import ExecutionTrace

__all__ = [
    "INF",
    "WAVE",
    "MAX_ROUNDS_FACTOR",
    "DIVERGENCE_WINDOW",
    "KernelResult",
    "wave_slices",
    "flat_neighbors",
    "vertex_hash_priority",
    "ConvergenceError",
    "DivergenceError",
    "DegenerateGraphError",
]

#: Unreached-distance sentinel; INF + max weight stays well inside int64.
INF = np.int64(1) << np.int64(60)

#: Items retired between visibility points of in-place (non-deterministic)
#: execution.  See module docstring.
WAVE = 4096

#: Safety bound on outer-loop rounds, as a multiple of the vertex count.
MAX_ROUNDS_FACTOR = 10


#: Rounds a diverging residual may stagnate before DivergenceError fires.
#: Big enough that legitimate long plateaus (near-diameter BFS frontiers on
#: path graphs make zero *global* progress look slow, not zero) never trip
#: it, small enough to abort a corrupted run long before the round budget.
DIVERGENCE_WINDOW = 64


class ConvergenceError(RuntimeError):
    """Raised when a kernel exceeds its round budget (indicates a bug)."""


class DivergenceError(ConvergenceError):
    """Raised when a kernel's state is provably not converging.

    Distinct from the plain round-budget overrun: the kernel caught its
    values going out of domain (negative distance, NaN/Inf rank) or its
    residual not shrinking over :data:`DIVERGENCE_WINDOW` rounds while
    still reporting work.  Subclasses :class:`ConvergenceError` so
    existing handlers keep working.
    """


class DegenerateGraphError(ValueError):
    """A kernel cannot run on this graph shape (e.g. zero vertices).

    Subclasses :class:`ValueError` with the historical messages, so
    pre-hardening callers that matched ``ValueError("empty graph")``
    still catch it; new callers (the fuzzer, the budget gate) can treat
    it as a typed, expected skip rather than a crash.
    """


@dataclass
class KernelResult:
    """A kernel's output values plus the recorded execution trace."""

    values: np.ndarray
    trace: ExecutionTrace


def wave_slices(n_items: int, wave: int = WAVE) -> Iterator[slice]:
    """Yield item slices of at most ``wave`` elements covering ``n_items``."""
    for beg in range(0, n_items, wave):
        yield slice(beg, min(beg + wave, n_items))


def flat_neighbors(
    graph: CSRGraph, items: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather the adjacency of ``items`` as flat arrays.

    Returns ``(edge_pos, owner)`` where ``edge_pos`` indexes into
    ``graph.col_idx``/``graph.weights`` for every neighbor slot of every
    item (in item order, list order within an item), and ``owner`` maps
    each slot back to its position in ``items``.
    """
    begs = graph.row_ptr[items]
    counts = graph.degrees[items]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    owner = np.repeat(np.arange(items.size, dtype=np.int64), counts)
    seg_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    within = np.arange(total, dtype=np.int64) - seg_starts[owner]
    edge_pos = begs[owner] + within
    return edge_pos, owner


#: Headroom bound for the segmented running-min trick in
#: :func:`sequential_improving`: the per-segment offsets plus the clipped
#: values must stay below 2**63, so the clip is chosen per call as
#: ``2**62 // (n_segs + 1) - 1``.  Real labels/distances sit far below
#: that (even 2**31-scale weights on a worklist only reach ~2**42 when a
#: wave holds millions of distinct targets); only the INF sentinels clip,
#: and they clip to a common value, which preserves every "is this
#: candidate an improvement" comparison.
_SEQ_HEADROOM = np.int64(2**62)


def sequential_improving(
    tgt: np.ndarray, cand: np.ndarray, before: np.ndarray
) -> np.ndarray:
    """Which candidate writes improve the running value, in order.

    Models the return-value semantics of a sequence of ``atomicMin`` calls
    applied in item order: a write "improves" iff its candidate is below
    the minimum of the pre-wave value and every earlier candidate for the
    same address.  This is what decides worklist pushes and conditional
    stores in the real codes — counting every candidate below the *pre-
    wave* value instead would over-push dramatically on high-degree
    targets.

    Parameters are wave-sized arrays: targets, candidate values, and the
    pre-wave value of each target (``write[tgt]``).  Returns a boolean
    mask aligned with the inputs.
    """
    n = tgt.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(tgt, kind="stable")
    t_s = tgt[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(t_s[1:], t_s[:-1], out=is_start[1:])
    seg = np.cumsum(is_start) - 1
    n_segs = int(seg[-1]) + 1
    clip = _SEQ_HEADROOM // np.int64(n_segs + 1) - np.int64(1)
    c_s = np.minimum(cand[order], clip)
    b_s = np.minimum(before[order], clip)
    # Segmented exclusive running min via the decreasing-offset trick:
    # earlier segments carry a strictly larger offset, so accumulate-min
    # never leaks across segment boundaries.
    offset = (np.int64(n_segs) - seg) * (clip + np.int64(1))
    feed = np.where(is_start, b_s, np.concatenate(([0], c_s[:-1])))
    running_excl = np.minimum.accumulate(feed + offset)
    improving_s = (c_s + offset) < running_excl
    improving = np.empty(n, dtype=bool)
    improving[order] = improving_s
    return improving


def vertex_hash_priority(n_vertices: int) -> np.ndarray:
    """Deterministic pseudo-random per-vertex priorities (for MIS).

    A fixed avalanche hash of the vertex id (matching how the real codes
    derive Luby priorities without an RNG), rank-transformed into a
    permutation of ``0..n-1`` so priorities are strictly unique and
    comparisons never tie.
    """
    v = np.arange(n_vertices, dtype=np.uint64)
    v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    v = v ^ (v >> np.uint64(31))
    rank = np.empty(n_vertices, dtype=np.int64)
    rank[np.argsort(v, kind="stable")] = np.arange(n_vertices, dtype=np.int64)
    return rank
