"""Style-parameterized Maximal Independent Set kernel (Luby-style).

Fixed, unique per-vertex hash priorities make the fixed point unique: the
parallel rounds converge to exactly the greedy sequential MIS in priority
order, which is what :func:`repro.kernels.serial.serial_mis` computes.

A vertex decides by scanning its neighbor list in order and stopping at the
first *event*: an IN neighbor (the vertex becomes OUT) or a higher-priority
undecided neighbor (the vertex stays undecided this round).  A scan that
completes without events joins the set.  The early exit is why the paper
observes that "the MIS code typically only visits a few neighbors per
vertex" (Section 5.2) — the per-item trip counts recorded here are the real
early-exit positions, which is what makes vertex-based MIS so well balanced.

Push-style deciders immediately mark their neighbors OUT (atomic stores,
with real conflict accounting); pull-style vertices discover IN neighbors
by scanning in a later round.  Data-driven runs keep the undecided vertices
on a no-duplicates worklist (Table 2: MIS supports nodup only).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..machine.trace import ExecutionTrace, IterationProfile, conflict_stats
from ..styles.axes import Determinism, Driver, Flow, Iteration
from ..styles.spec import SemanticKey
from .base import (
    MAX_ROUNDS_FACTOR,
    WAVE,
    ConvergenceError,
    DegenerateGraphError,
    KernelResult,
    flat_neighbors,
    vertex_hash_priority,
)

__all__ = ["MISKernel", "UNDECIDED", "IN_SET", "OUT"]

UNDECIDED = np.int8(0)
IN_SET = np.int8(1)
OUT = np.int8(2)

_NO_EVENT = np.int64(1) << np.int64(40)


class MISKernel:
    """Runs MIS on one graph in any semantic style."""

    def __init__(self, graph: CSRGraph, label: str = "mis"):
        if graph.n_vertices == 0:
            raise DegenerateGraphError("empty graph")
        self.graph = graph
        self.label = label
        self.pri = vertex_hash_priority(graph.n_vertices)
        self._src = graph.edge_sources().astype(np.int64)
        self._dst = graph.col_idx.astype(np.int64)
        self._degrees = graph.degrees

    # ------------------------------------------------------------------
    def run(self, sem: SemanticKey) -> KernelResult:
        trace = ExecutionTrace(
            n_edges=self.graph.n_edges,
            n_vertices=self.graph.n_vertices,
            label=f"{self.label}:{sem.iteration.value}:{sem.driver.value}",
        )
        status = np.full(self.graph.n_vertices, UNDECIDED, dtype=np.int8)
        trace.add(
            IterationProfile(
                n_items=self.graph.n_vertices,
                base_cycles=1.0,
                shared_stores_base=1.0,
                label="init",
            )
        )
        if sem.iteration is Iteration.VERTEX:
            self._run_vertex(sem, status, trace)
        else:
            self._run_edge(sem, status, trace)
        return KernelResult(values=(status == IN_SET).astype(np.int8), trace=trace)

    @staticmethod
    def _copy_profile(n: int) -> IterationProfile:
        """Double-buffer refresh of the deterministic style (Section 2.6)."""
        return IterationProfile(
            n_items=n,
            base_cycles=1.0,
            shared_loads_base=1.0,
            shared_stores_base=1.0,
            label="double-buffer refresh",
        )

    # ------------------------------------------------------------------
    # Vertex-based rounds
    # ------------------------------------------------------------------
    def _run_vertex(
        self, sem: SemanticKey, status: np.ndarray, trace: ExecutionTrace
    ) -> None:
        n = self.graph.n_vertices
        max_rounds = MAX_ROUNDS_FACTOR * n + 10
        data = sem.driver is Driver.DATA
        worklist = np.flatnonzero(status == UNDECIDED).astype(np.int64)
        for _round in range(max_rounds):
            if not np.any(status == UNDECIDED):
                trace.converged = True
                return
            items = worklist if data else np.arange(n, dtype=np.int64)
            if sem.determinism is Determinism.DETERMINISTIC:
                read = status.copy()
                trace.add(self._copy_profile(n))
            else:
                read = status
            trips = np.zeros(items.size, dtype=np.int64)
            marks = 0
            mark_conflict = 0.0
            mark_max = 0
            new_in_parts = []
            for beg in range(0, items.size, WAVE):
                sl = slice(beg, min(beg + WAVE, items.size))
                wave_items = items[sl]
                # A thread first checks its own status (the snapshot in the
                # deterministic style, the live array otherwise).
                active_mask = read[wave_items] == UNDECIDED
                active = wave_items[active_mask]
                if active.size == 0:
                    continue
                w_trips, became_in, became_out = self._scan(read, active)
                trips_w = np.zeros(wave_items.size, dtype=np.int64)
                trips_w[active_mask] = w_trips
                trips[sl] = trips_w
                if became_out.size:
                    status[became_out] = OUT
                if became_in.size:
                    status[became_in] = IN_SET
                    new_in_parts.append(became_in)
                    if sem.flow is Flow.PUSH:
                        edge_pos, _owner = flat_neighbors(self.graph, became_in)
                        nbrs = self._dst[edge_pos]
                        status[nbrs[status[nbrs] == UNDECIDED]] = OUT
                        marks += edge_pos.size
                        extra, mx = conflict_stats(nbrs, n)
                        mark_conflict += extra
                        mark_max = max(mark_max, mx)
            deciders = sum(part.size for part in new_in_parts)
            # Push deciders walk their adjacency twice (scan + mark); add
            # the marking trips to the per-item totals for those items.
            if sem.flow is Flow.PUSH and deciders:
                new_in = np.concatenate(new_in_parts)
                pos = np.searchsorted(items, new_in)
                trips[pos] += self._degrees[new_in]
            trace.add(
                self._vertex_profile(
                    sem, items.size, trips, marks, mark_conflict, mark_max,
                    deciders, data,
                )
            )
            trace.iterations += 1
            if data:
                worklist = items[status[items] == UNDECIDED]
        raise ConvergenceError(f"{self.label} vertex rounds exceeded {max_rounds}")

    def _scan(
        self, read: np.ndarray, active: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Early-exit neighbor scan for the active (undecided) vertices.

        Returns per-item trip counts and the items that became IN / OUT.
        """
        deg = self._degrees[active]
        edge_pos, owner = flat_neighbors(self.graph, active)
        if edge_pos.size == 0:
            # Isolated vertices join the set immediately.
            return (
                np.zeros(active.size, dtype=np.int64),
                active,
                np.empty(0, dtype=np.int64),
            )
        nbrs = self._dst[edge_pos]
        s_nbr = read[nbrs]
        pri_self = self.pri[active][owner]
        in_event = s_nbr == IN_SET
        blocked_event = (s_nbr == UNDECIDED) & (self.pri[nbrs] > pri_self)
        event = in_event | blocked_event

        seg_starts = np.concatenate([[0], np.cumsum(deg)[:-1]])
        within = np.arange(edge_pos.size, dtype=np.int64) - seg_starts[owner]
        event_pos = np.where(event, within, _NO_EVENT)
        first_event = np.full(active.size, _NO_EVENT, dtype=np.int64)
        np.minimum.at(first_event, owner, event_pos)
        # The OUT event must also be *first*: find the first IN-neighbor
        # position and compare it with the first blocker position.
        in_pos = np.where(in_event, within, _NO_EVENT)
        first_in = np.full(active.size, _NO_EVENT, dtype=np.int64)
        np.minimum.at(first_in, owner, in_pos)

        no_event = first_event >= _NO_EVENT
        trips = np.where(no_event, deg, np.minimum(first_event + 1, deg))
        became_in = active[no_event]
        became_out = active[(~no_event) & (first_in <= first_event)]
        return trips, became_in, became_out

    def _vertex_profile(
        self,
        sem: SemanticKey,
        n_items: int,
        trips: np.ndarray,
        marks: int,
        mark_conflict: float,
        mark_max: int,
        deciders: int,
        data: bool,
    ) -> IterationProfile:
        total_trips = max(int(trips.sum()), 1)
        items = max(n_items, 1)
        push = sem.flow is Flow.PUSH
        # Status writes: one per decision; push marking adds atomics on
        # neighbor cells.  These are CAS/exchange-style ops (not min/max),
        # so OpenMP realizes them as atomics, not critical sections.
        atomics_base = deciders / items
        atomics_inner = (marks / total_trips) if push else 0.0
        stamp = 0.0
        if data:
            # No-duplicates worklist: stamp check per still-undecided item
            # (Listing 3b's atomicMax) — a min/max op.
            stamp = 1.0
        return IterationProfile(
            n_items=n_items,
            inner=trips,
            base_cycles=2.0,
            inner_cycles=2.0,
            struct_loads_base=2.0 + (1.0 if data else 0.0),
            struct_loads_inner=1.0,
            shared_loads_base=2.0,  # own status + own priority
            shared_loads_inner=2.0,  # neighbor status + priority
            atomics_base=atomics_base + stamp,
            atomics_inner=atomics_inner,
            atomic_minmax=data,  # the stamp is an atomicMax
            conflict_extra=mark_conflict,
            max_conflict=mark_max,
            hot_atomics=float(n_items if data else 0) + 1.0,
            label="mis-vertex" + ("-wl" if data else ""),
        )

    # ------------------------------------------------------------------
    # Edge-based rounds (two phases per round)
    # ------------------------------------------------------------------
    def _run_edge(
        self, sem: SemanticKey, status: np.ndarray, trace: ExecutionTrace
    ) -> None:
        n, m = self.graph.n_vertices, self.graph.n_edges
        max_rounds = MAX_ROUNDS_FACTOR * n + 10
        data = sem.driver is Driver.DATA
        for _round in range(max_rounds):
            undecided = status == UNDECIDED
            if not undecided.any():
                trace.converged = True
                return
            if data:
                # The worklist keeps the edges whose *deciding* endpoint is
                # still undecided (the side the edge writes to).
                mine_side = self._src if sem.flow is Flow.PULL else self._dst
                edge_ids = np.flatnonzero(undecided[mine_side]).astype(np.int64)
            else:
                edge_ids = np.arange(m, dtype=np.int64)
            if sem.determinism is Determinism.DETERMINISTIC:
                read = status.copy()
                trace.add(self._copy_profile(n))
            else:
                read = status
            blocked = np.zeros(n, dtype=bool)
            writes = 0
            conflict_extra = 0.0
            max_conflict = 0
            # Phase 1: per-edge blocking / OUT propagation.
            for beg in range(0, edge_ids.size, WAVE):
                ids = edge_ids[beg : beg + WAVE]
                if sem.flow is Flow.PULL:
                    mine, other = self._src[ids], self._dst[ids]
                else:
                    mine, other = self._dst[ids], self._src[ids]
                s_mine = status[mine]
                s_other = read[other]
                live = s_mine == UNDECIDED
                outs = live & (s_other == IN_SET)
                if outs.any():
                    status[mine[outs]] = OUT
                blocks = live & (s_other == UNDECIDED) & (
                    self.pri[other] > self.pri[mine]
                )
                if blocks.any():
                    blocked[mine[blocks]] = True
                writes += int(outs.sum()) + int(blocks.sum())
                written_to = mine[outs | blocks]
                extra, mx = conflict_stats(written_to, n)
                conflict_extra += extra
                max_conflict = max(max_conflict, mx)
            trace.add(
                self._edge_profile(sem, edge_ids.size, writes, conflict_extra,
                                   max_conflict, data)
            )
            # Phase 2: unblocked undecided vertices join the set.
            joiners = np.flatnonzero((status == UNDECIDED) & ~blocked)
            if joiners.size:
                status[joiners] = IN_SET
            trace.add(
                IterationProfile(
                    n_items=n,
                    base_cycles=2.0,
                    shared_loads_base=2.0,  # status + blocked flag
                    shared_stores_base=joiners.size / max(n, 1),
                    label="mis-join",
                )
            )
            trace.iterations += 1
        raise ConvergenceError(f"{self.label} edge rounds exceeded {max_rounds}")

    def _edge_profile(
        self,
        sem: SemanticKey,
        n_items: int,
        writes: int,
        conflict_extra: float,
        max_conflict: int,
        data: bool,
    ) -> IterationProfile:
        items = max(n_items, 1)
        return IterationProfile(
            n_items=n_items,
            base_cycles=3.0,
            struct_loads_base=2.0 + (1.0 if data else 0.0),
            shared_loads_base=4.0,  # two statuses + two priorities
            atomics_base=writes / items + (1.0 if data else 0.0),
            atomic_minmax=data,  # worklist stamp
            conflict_extra=conflict_extra,
            max_conflict=max_conflict,
            hot_atomics=float(n_items if data else 0) + 1.0,
            label="mis-edge" + ("-wl" if data else ""),
        )
