"""Style-parameterized relaxation engine for BFS, SSSP and CC.

All three "label-correcting" problems of the study share one structure —
iterate edge relaxations ``value[dst] = min(value[dst], value[src] + cost)``
until a fixed point — and differ only in the edge cost and initial values:

* SSSP: cost = edge weight, source initialized to 0 (Bellman-Ford),
* BFS:  cost = 1, source initialized to 0 (level computation),
* CC:   cost = 0, every vertex initialized to its own id (min-label
  propagation).

The engine executes every semantic style combination of Section 2 with its
real semantics:

* vertex- vs edge-based work items (Section 2.1),
* topology-driven full sweeps vs a real worklist, with or without
  duplicates (Sections 2.2, 2.3),
* push vs pull data flow (Section 2.4),
* read-write races — resolved *last-improving-writer-wins* within a wave,
  which reproduces the priority inversions of Section 2.5 — vs atomic
  min (read-modify-write),
* deterministic double buffering (Jacobi) vs in-place execution with
  wave-granular visibility (Gauss-Seidel-style propagation, Section 2.6).

Each pass records an :class:`IterationProfile` with exact operation counts
and the real contention histogram of its atomic destinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..machine.trace import ExecutionTrace, IterationProfile, conflict_stats
from ..styles.axes import Determinism, Driver, Dup, Flow, Iteration, Update
from ..styles.spec import SemanticKey
from .base import (
    DIVERGENCE_WINDOW,
    INF,
    MAX_ROUNDS_FACTOR,
    WAVE,
    ConvergenceError,
    DegenerateGraphError,
    DivergenceError,
    KernelResult,
    flat_neighbors,
    sequential_improving,
)

__all__ = ["RelaxationKernel", "EDGE_COST_MODES"]

EDGE_COST_MODES = ("weight", "unit", "zero")


@dataclass
class _PassStats:
    """What one full pass over the items did (accumulated across waves)."""

    trips: int = 0  # edge slots processed
    improving: int = 0  # updates that improved a value
    improved_items: int = 0  # distinct target vertices improved (approx.)
    conflict_extra: float = 0.0
    max_conflict: int = 0
    store_conflict_extra: float = 0.0  # plain-store WW races (RW push)
    store_max_conflict: int = 0
    n_items: int = 0  # work items of the pass (worklist passes fill this)
    inner: Optional[np.ndarray] = None  # per-item trip counts (idem)


class RelaxationKernel:
    """Runs one relaxation problem on one graph in any semantic style."""

    def __init__(
        self,
        graph: CSRGraph,
        *,
        edge_cost: str,
        source: int = 0,
        label: str = "relax",
    ):
        if edge_cost not in EDGE_COST_MODES:
            raise ValueError(f"edge_cost must be one of {EDGE_COST_MODES}")
        if edge_cost == "weight" and graph.weights is None:
            raise ValueError("weighted relaxation requires edge weights")
        if graph.n_vertices == 0:
            raise DegenerateGraphError("empty graph")
        if edge_cost != "zero" and not 0 <= source < graph.n_vertices:
            raise ValueError("source out of range")
        self.graph = graph
        self.edge_cost = edge_cost
        self.source = source
        self.label = label
        # Cached flat views (shared across all semantic runs).
        self._src = graph.edge_sources().astype(np.int64)
        self._dst = graph.col_idx.astype(np.int64)
        self._costs = self._make_costs()
        self._degrees = graph.degrees

    # ------------------------------------------------------------------
    def _make_costs(self) -> np.ndarray:
        m = self.graph.n_edges
        if self.edge_cost == "weight":
            return self.graph.weights.astype(np.int64)
        if self.edge_cost == "unit":
            return np.ones(m, dtype=np.int64)
        return np.zeros(m, dtype=np.int64)

    def _initial_values(self) -> np.ndarray:
        n = self.graph.n_vertices
        if self.edge_cost == "zero":  # CC: own label
            return np.arange(n, dtype=np.int64)
        values = np.full(n, INF, dtype=np.int64)
        values[self.source] = 0
        return values

    def _initial_worklist(self, iteration: Iteration, flow: Flow) -> np.ndarray:
        if self.edge_cost == "zero":  # CC: everything starts dirty
            if iteration is Iteration.VERTEX:
                return np.arange(self.graph.n_vertices, dtype=np.int64)
            return np.arange(self.graph.n_edges, dtype=np.int64)
        if iteration is Iteration.VERTEX:
            if flow is Flow.PULL:
                # Pull worklists hold vertices to *recompute*: the
                # source's neighbors may now improve.
                return np.unique(self.graph.neighbors(self.source)).astype(np.int64)
            return np.array([self.source], dtype=np.int64)
        beg, end = self.graph.neighbor_range(self.source)
        return np.arange(beg, end, dtype=np.int64)

    # ------------------------------------------------------------------
    # Divergence guard
    # ------------------------------------------------------------------
    @staticmethod
    def _new_guard_state() -> dict:
        return {"best": (float("inf"), float("inf")), "stale": 0}

    def _divergence_guard(
        self, values: np.ndarray, state: dict, improving: int
    ) -> None:
        """Abort provably-diverging runs long before the round budget.

        Min-relaxation values live in ``[0, INF]`` and their sum is
        monotone non-increasing; a negative value means weight overflow
        or a corrupted update, and a residual that stops shrinking while
        passes still report improving updates means the run is looping,
        not converging.
        """
        lo = int(values.min()) if values.size else 0
        if lo < 0:
            raise DivergenceError(
                f"{self.label}: value domain violated (min {lo} < 0) — "
                "weight overflow or corrupted update"
            )
        # Progress metric: (unreached count, sum of reached values).  The
        # INF entries are counted, not summed — a float64 sum dominated by
        # 2**60 sentinels cannot resolve small refinements and would
        # false-flag long-diameter graphs as stale.
        reached = values < INF
        total = (
            int(values.size - np.count_nonzero(reached)),
            float(values[reached].sum(dtype=np.float64)),
        )
        if total < state["best"]:
            state["best"] = total
            state["stale"] = 0
        elif improving:
            state["stale"] += 1
            if state["stale"] >= DIVERGENCE_WINDOW:
                raise DivergenceError(
                    f"{self.label}: residual stopped shrinking for "
                    f"{DIVERGENCE_WINDOW} rounds despite improving "
                    "updates — diverging"
                )

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(self, sem: SemanticKey) -> KernelResult:
        """Execute the problem under one semantic style combination."""
        trace = ExecutionTrace(
            n_edges=self.graph.n_edges,
            n_vertices=self.graph.n_vertices,
            label=f"{self.label}:{sem.iteration.value}:{sem.driver.value}",
        )
        values = self._initial_values()
        trace.add(self._init_profile())

        if sem.driver is Driver.TOPOLOGY:
            self._run_topology(sem, values, trace)
        else:
            self._run_data_driven(sem, values, trace)
        return KernelResult(values=values, trace=trace)

    # ------------------------------------------------------------------
    # Topology-driven
    # ------------------------------------------------------------------
    def _run_topology(
        self, sem: SemanticKey, values: np.ndarray, trace: ExecutionTrace
    ) -> None:
        n, m = self.graph.n_vertices, self.graph.n_edges
        max_rounds = MAX_ROUNDS_FACTOR * n + 10
        deterministic = sem.determinism is Determinism.DETERMINISTIC
        guard = self._new_guard_state()
        for _round in range(max_rounds):
            if deterministic:
                read = values.copy()
                write = values
                # Double-buffer refresh kernel (Section 2.6's extra memory
                # traffic; the arrays swap, but the write buffer must start
                # from the read values).
                trace.add(self._copy_profile(n))
            else:
                read = write = values
            stats = _PassStats()
            if sem.iteration is Iteration.VERTEX:
                self._pass_vertex_all(sem, read, write, stats)
                trace.add(self._vertex_profile(sem, n, self._degrees, stats, data=False))
            else:
                self._pass_edges(sem, read, write, np.arange(m, dtype=np.int64), stats)
                trace.add(self._edge_profile(sem, m, stats, data=False))
            trace.iterations += 1
            if stats.improving == 0:
                trace.converged = True
                return
            self._divergence_guard(values, guard, stats.improving)
        raise ConvergenceError(
            f"{self.label} topology-driven did not converge in {max_rounds} rounds"
        )

    def _pass_vertex_all(
        self,
        sem: SemanticKey,
        read: np.ndarray,
        write: np.ndarray,
        stats: _PassStats,
    ) -> None:
        """One sweep over all vertices, wave by wave (CSR slot ranges)."""
        row_ptr = self.graph.row_ptr
        n = self.graph.n_vertices
        for vbeg in range(0, n, WAVE):
            vend = min(vbeg + WAVE, n)
            lo, hi = int(row_ptr[vbeg]), int(row_ptr[vend])
            if lo == hi:
                continue
            if sem.flow is Flow.PUSH:
                src = self._src[lo:hi]
                tgt = self._dst[lo:hi]
            else:  # PULL (symmetric storage: in-edges are the same slots)
                src = self._dst[lo:hi]
                tgt = self._src[lo:hi]
            cand = read[src] + self._costs[lo:hi]
            self._apply(sem, write, tgt, cand, stats)

    def _pass_edges(
        self,
        sem: SemanticKey,
        read: np.ndarray,
        write: np.ndarray,
        edge_ids: np.ndarray,
        stats: _PassStats,
    ) -> None:
        """One sweep over an explicit edge-id list, wave by wave."""
        for beg in range(0, edge_ids.size, WAVE):
            ids = edge_ids[beg : beg + WAVE]
            if sem.flow is Flow.PUSH:
                src, tgt = self._src[ids], self._dst[ids]
            else:
                src, tgt = self._dst[ids], self._src[ids]
            cand = read[src] + self._costs[ids]
            self._apply(sem, write, tgt, cand, stats)

    # ------------------------------------------------------------------
    # Data-driven
    # ------------------------------------------------------------------
    def _run_data_driven(
        self, sem: SemanticKey, values: np.ndarray, trace: ExecutionTrace
    ) -> None:
        n = self.graph.n_vertices
        max_rounds = MAX_ROUNDS_FACTOR * n + 10
        deterministic = sem.determinism is Determinism.DETERMINISTIC
        worklist = self._initial_worklist(sem.iteration, sem.flow)
        guard = self._new_guard_state()
        for _round in range(max_rounds):
            if worklist.size == 0:
                trace.converged = True
                return
            if deterministic:
                read = values.copy()
                write = values
                trace.add(self._copy_profile(n))
            else:
                read = write = values
            stats = _PassStats()
            if sem.iteration is Iteration.VERTEX:
                worklist, pushes = self._pass_vertex_worklist(
                    sem, read, write, worklist, stats
                )
                profile = self._vertex_profile(
                    sem,
                    int(stats.n_items),  # set by the pass below
                    stats.inner,  # idem
                    stats,
                    data=True,
                    pushes=pushes,
                )
            else:
                worklist, pushes = self._pass_edge_worklist(
                    sem, read, write, worklist, stats
                )
                profile = self._edge_profile(
                    sem, int(stats.n_items), stats, data=True, pushes=pushes
                )
            trace.add(profile)
            trace.iterations += 1
            self._divergence_guard(values, guard, stats.improving)
        raise ConvergenceError(
            f"{self.label} data-driven did not converge in {max_rounds} rounds"
        )

    def _pass_vertex_worklist(
        self,
        sem: SemanticKey,
        read: np.ndarray,
        write: np.ndarray,
        worklist: np.ndarray,
        stats: _PassStats,
    ) -> Tuple[np.ndarray, int]:
        """Process a vertex worklist; return (next_wl, pushes).

        Push flow: items relax their out-edges; improved *targets* go on
        the next worklist.  Pull flow: items recompute themselves from
        their in-edges; all neighbors of improved items go on the next
        worklist (which is why pull worklists carry more useless entries —
        Section 2.4).
        """
        stats.n_items = worklist.size
        stats.inner = self._degrees[worklist]
        pull = sem.flow is Flow.PULL
        next_parts = []
        for beg in range(0, worklist.size, WAVE):
            items = worklist[beg : beg + WAVE]
            edge_pos, owner = flat_neighbors(self.graph, items)
            if edge_pos.size == 0:
                continue
            if pull:
                src = self._dst[edge_pos]
                tgt = items[owner]
            else:
                src = items[owner]
                tgt = self._dst[edge_pos]
            cand = read[src] + self._costs[edge_pos]
            improving_tgt = self._apply(sem, write, tgt, cand, stats)
            if improving_tgt.size == 0:
                continue
            if pull:
                improved = np.unique(improving_tgt)
                nbr_pos, _owner = flat_neighbors(self.graph, improved)
                if nbr_pos.size:
                    next_parts.append(self._dst[nbr_pos].astype(np.int64))
            else:
                next_parts.append(improving_tgt)
        if next_parts:
            nxt = np.concatenate(next_parts)
        else:
            nxt = np.empty(0, dtype=np.int64)
        if sem.dup is Dup.NODUP:
            nxt = np.unique(nxt)
        return nxt, int(nxt.size)

    def _pass_edge_worklist(
        self,
        sem: SemanticKey,
        read: np.ndarray,
        write: np.ndarray,
        worklist: np.ndarray,
        stats: _PassStats,
    ) -> Tuple[np.ndarray, int]:
        """Process an edge-id worklist; push the out-edges of improved
        vertices for the next round."""
        stats.n_items = worklist.size
        stats.inner = None
        improved_parts = []
        for beg in range(0, worklist.size, WAVE):
            ids = worklist[beg : beg + WAVE]
            src, tgt = self._src[ids], self._dst[ids]
            cand = read[src] + self._costs[ids]
            improving_tgt = self._apply(sem, write, tgt, cand, stats)
            if improving_tgt.size:
                improved_parts.append(improving_tgt)
        if improved_parts:
            improved = np.concatenate(improved_parts)
        else:
            improved = np.empty(0, dtype=np.int64)
        if sem.dup is Dup.NODUP:
            improved = np.unique(improved)
        if improved.size == 0:
            return np.empty(0, dtype=np.int64), 0
        edge_pos, _owner = flat_neighbors(self.graph, improved)
        return edge_pos, int(edge_pos.size)

    # ------------------------------------------------------------------
    # The update itself
    # ------------------------------------------------------------------
    def _apply(
        self,
        sem: SemanticKey,
        write: np.ndarray,
        tgt: np.ndarray,
        cand: np.ndarray,
        stats: _PassStats,
    ) -> np.ndarray:
        """Apply one wave of candidate values; returns the targets that
        improved (with duplicates — the dup-style worklist wants them)."""
        before = write[tgt]
        # "Improving" follows atomicMin return-value semantics under
        # in-order interleaving (see sequential_improving): this is what
        # gates worklist pushes and conditional stores in the real codes.
        improving = sequential_improving(tgt, cand, before)
        n_improving = int(np.count_nonzero(improving))
        stats.trips += tgt.size
        stats.improving += n_improving
        # Value application.  RMW is an atomic min; pull is a single-writer
        # local min; READ-WRITE push resolves its read-check-write races in
        # the common (race-free) case — on real hardware the window between
        # the check and the store is nanoseconds, so the Section 2.5
        # priority inversions are rare one-off events the algorithm repairs,
        # not a systematic effect.  (A simulator that widened the race
        # window to a full wave would systematically punish read-write push
        # with extra convergence passes that real executions do not pay,
        # and for data-driven codes a lost improving write would make the
        # final result wrong outright — the suite only contains codes whose
        # final result is deterministic and verified, Sections 2.6/4.1.)
        if n_improving:
            np.minimum.at(write, tgt[improving], cand[improving])
        if sem.update is Update.READ_MODIFY_WRITE and sem.flow is Flow.PUSH:
            extra, mx = conflict_stats(tgt, write.size)
            stats.conflict_extra += extra
            stats.max_conflict = max(stats.max_conflict, mx)
        elif sem.flow is Flow.PUSH and tgt.size:
            # Read-write push: every thread whose check passes against the
            # *pre-wave* value stores concurrently — those plain stores are
            # the Section 2.5 write-write races (the sequential mask above
            # only decides who ultimately wins).  Record their collision
            # statistics so the sanitizer can assert they stayed benign
            # (pull flow writes are thread-local, never cross-item races).
            racy = cand < before
            if np.any(racy):
                extra, mx = conflict_stats(tgt[racy], write.size)
                stats.store_conflict_extra += extra
                stats.store_max_conflict = max(stats.store_max_conflict, mx)
        if n_improving:
            stats.improved_items += int(np.unique(tgt[improving]).size)
            return tgt[improving]
        return np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def _init_profile(self) -> IterationProfile:
        return IterationProfile(
            n_items=self.graph.n_vertices,
            base_cycles=1.0,
            shared_stores_base=1.0,
            label="init",
        )

    def _copy_profile(self, n: int) -> IterationProfile:
        return IterationProfile(
            n_items=n,
            base_cycles=1.0,
            shared_loads_base=1.0,
            shared_stores_base=1.0,
            label="double-buffer refresh",
        )

    def _vertex_profile(
        self,
        sem: SemanticKey,
        n_items: int,
        inner: Optional[np.ndarray],
        stats: _PassStats,
        *,
        data: bool,
        pushes: int = 0,
    ) -> IterationProfile:
        weighted = 1.0 if self.edge_cost == "weight" else 0.0
        trips = max(stats.trips, 1)
        improve_per_trip = stats.improving / trips
        rw = sem.update is Update.READ_WRITE
        pull = sem.flow is Flow.PULL

        struct_loads_base = 2.0 + (1.0 if data else 0.0)  # row_ptr + worklist
        shared_loads_base = 0.0 if pull else 1.0  # push reads own value once
        shared_stores_base = 0.0
        shared_loads_inner = 0.0
        shared_stores_inner = 0.0
        atomics_base = 0.0
        atomics_inner = 0.0
        if pull:
            # Listing 4b does NOT factor the update out of the loop
            # (Section 2.4 notes the possibility but the suite's pull
            # codes update per neighbor): every trip reads the neighbor
            # value and updates the own cell.
            shared_loads_inner += 1.0  # neighbor value per trip
            if rw:
                shared_loads_inner += 1.0  # re-read own value per trip
                shared_stores_inner += improve_per_trip
            else:
                atomics_inner += 1.0  # atomicMin on own cell per trip
        else:  # push
            if rw:
                shared_loads_inner += 1.0  # read target value
                shared_stores_inner += improve_per_trip
            else:
                atomics_inner += 1.0  # atomicMin on target per trip
        if data and sem.dup is Dup.NODUP:
            # Stamp check per improving update: atomicMax on stat[] plus a
            # read of the stamp (Listing 3b).
            shared_loads_inner += improve_per_trip
            atomics_inner += improve_per_trip

        return IterationProfile(
            n_items=n_items,
            inner=inner,
            base_cycles=2.0,
            inner_cycles=2.0,
            struct_loads_base=struct_loads_base,
            struct_loads_inner=1.0 + weighted,
            shared_loads_base=shared_loads_base,
            shared_loads_inner=shared_loads_inner,
            shared_stores_base=shared_stores_base,
            shared_stores_inner=shared_stores_inner,
            atomics_base=atomics_base,
            atomics_inner=atomics_inner,
            atomic_minmax=True,
            atomics_same_address_per_item=pull and not rw,
            conflict_extra=stats.conflict_extra,
            max_conflict=stats.max_conflict,
            store_conflict_extra=stats.store_conflict_extra,
            store_max_conflict=stats.store_max_conflict,
            wl_pushes=pushes if data else -1,
            hot_atomics=float(pushes) + 1.0,  # worklist appends + done-flag
            label="relax-vertex" + ("-wl" if data else ""),
        )

    def _edge_profile(
        self,
        sem: SemanticKey,
        n_items: int,
        stats: _PassStats,
        *,
        data: bool,
        pushes: int = 0,
    ) -> IterationProfile:
        weighted = 1.0 if self.edge_cost == "weight" else 0.0
        items = max(n_items, 1)
        improve_per_item = stats.improving / items
        rw = sem.update is Update.READ_WRITE

        struct_loads_base = 2.0 + weighted + (1.0 if data else 0.0)
        shared_loads_base = 1.0  # source value
        shared_stores_base = 0.0
        atomics_base = 0.0
        if rw:
            shared_loads_base += 1.0
            shared_stores_base += improve_per_item
        else:
            atomics_base += 1.0
        if data and sem.dup is Dup.NODUP:
            shared_loads_base += improve_per_item
            atomics_base += improve_per_item

        return IterationProfile(
            n_items=n_items,
            inner=None,
            base_cycles=3.0,
            struct_loads_base=struct_loads_base,
            shared_loads_base=shared_loads_base,
            shared_stores_base=shared_stores_base,
            atomics_base=atomics_base,
            atomic_minmax=True,
            conflict_extra=stats.conflict_extra,
            max_conflict=stats.max_conflict,
            store_conflict_extra=stats.store_conflict_extra,
            store_max_conflict=stats.store_max_conflict,
            wl_pushes=pushes if data else -1,
            hot_atomics=float(pushes) + 1.0,
            label="relax-edge" + ("-wl" if data else ""),
        )
