"""Style-parameterized Triangle Counting kernel.

TC is the study's substructure problem: topology-driven, deterministic,
read-modify-write only (Table 2), with no push/pull axis (Section 5.4), but
with both vertex- and edge-based iteration and the full reduction-style
axis.  Uniquely among the non-reduction algorithms, edge-based TC retains
an inner loop (the neighbor-list intersection), so warp/block granularity
applies to it (the merge is strip-mined across lanes).

Counting uses the standard forward-edge formulation: orient every edge
from the smaller to the larger id; a triangle ``a < b < c`` is counted
exactly once as ``|N+(a) ∩ N+(b)|`` contributions on the edge ``(a, b)``.
The per-item trip counts are the real sorted-merge lengths
``|N+(u)| + |N+(v)|``, which is where TC's severe load imbalance (and the
edge-based style's advantage on skewed graphs, Section 5.2) comes from.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..graph.csr import CSRGraph
from ..machine.trace import ExecutionTrace, IterationProfile
from ..styles.axes import Iteration
from ..styles.spec import SemanticKey
from .base import DegenerateGraphError, KernelResult

__all__ = ["TriangleCountKernel"]


class TriangleCountKernel:
    """Runs triangle counting on one graph (vertex- or edge-based)."""

    def __init__(self, graph: CSRGraph, label: str = "tc"):
        if graph.n_vertices == 0:
            raise DegenerateGraphError("empty graph")
        if not graph.has_sorted_neighbors():
            raise ValueError("TC requires sorted adjacency lists")
        self.graph = graph
        self.label = label
        src = graph.edge_sources().astype(np.int64)
        dst = graph.col_idx.astype(np.int64)
        fwd_mask = src < dst
        self._fsrc = src[fwd_mask]
        self._fdst = dst[fwd_mask]
        self._fwd_mask = fwd_mask
        n = graph.n_vertices
        #: forward degree |N+(v)| of every vertex.
        self.fdeg = np.bincount(self._fsrc, minlength=n).astype(np.int64)
        self._adj = sparse.csr_matrix(
            (np.ones(self._fsrc.size, dtype=np.int64), (self._fsrc, self._fdst)),
            shape=(n, n),
        )

    # ------------------------------------------------------------------
    def count(self) -> int:
        """Exact triangle count via the forward-adjacency product."""
        return int(self._per_edge_counts().sum())

    def _per_edge_counts(self) -> np.ndarray:
        """Triangles closed on each forward edge (aligned with _fsrc)."""
        if self._fsrc.size == 0:
            return np.zeros(0, dtype=np.int64)
        paths = self._adj @ self._adj  # paths a -> b -> c with a<b<c
        closed = paths.multiply(self._adj).tocoo()  # closed by edge a -> c
        n = np.int64(self.graph.n_vertices)
        keys = closed.row.astype(np.int64) * n + closed.col
        order = np.argsort(keys)
        keys = keys[order]
        data = closed.data[order]
        edge_keys = self._fsrc * n + self._fdst
        idx = np.searchsorted(keys, edge_keys)
        counts = np.zeros(self._fsrc.size, dtype=np.int64)
        in_range = idx < keys.size
        hit = in_range.copy()
        hit[in_range] = keys[idx[in_range]] == edge_keys[in_range]
        counts[hit] = data[idx[hit]]
        return counts

    def run(self, sem: SemanticKey) -> KernelResult:
        trace = ExecutionTrace(
            n_edges=self.graph.n_edges,
            n_vertices=self.graph.n_vertices,
            iterations=1,
            label=f"{self.label}:{sem.iteration.value}",
        )
        per_edge = self._per_edge_counts()
        total = int(per_edge.sum())
        merge_per_fwd_edge = self.fdeg[self._fsrc] + self.fdeg[self._fdst]
        if sem.iteration is Iteration.VERTEX:
            trace.add(self._vertex_profile(merge_per_fwd_edge, per_edge))
        else:
            trace.add(self._edge_profile(merge_per_fwd_edge, per_edge))
        return KernelResult(
            values=np.array([total], dtype=np.int64), trace=trace
        )

    # ------------------------------------------------------------------
    def _vertex_profile(
        self, merge_per_fwd_edge: np.ndarray, per_edge: np.ndarray
    ) -> IterationProfile:
        n = self.graph.n_vertices
        # Each vertex u performs the merges of all its forward edges.
        trips = np.zeros(n, dtype=np.int64)
        np.add.at(trips, self._fsrc, merge_per_fwd_edge)
        # A thread only adds its partial when it found triangles
        # ("if (count) atomicAdd(...)"), so the reduction traffic is the
        # number of vertices that closed at least one triangle.
        per_vertex = np.zeros(n, dtype=np.int64)
        np.add.at(per_vertex, self._fsrc, per_edge)
        contributors = int(np.count_nonzero(per_vertex))
        return IterationProfile(
            n_items=n,
            inner=trips,
            base_cycles=2.0,
            inner_cycles=1.5,  # compare + advance of the sorted merge
            struct_loads_base=2.0,
            struct_loads_inner=1.0,  # one adjacency element per merge step
            reduction_items=float(contributors),
            label="tc-vertex",
        )

    def _edge_profile(
        self, merge_per_fwd_edge: np.ndarray, per_edge: np.ndarray
    ) -> IterationProfile:
        # Edge-based codes iterate over all directed edges; the backward
        # half exits after the u < v check (trip count 0, no add).
        m = self.graph.n_edges
        trips = np.zeros(m, dtype=np.int64)
        trips[self._fwd_mask] = merge_per_fwd_edge
        contributors = int(np.count_nonzero(per_edge))
        return IterationProfile(
            n_items=m,
            inner=trips,
            base_cycles=2.0,
            inner_cycles=1.5,
            struct_loads_base=3.0,  # endpoints; list offsets on the fwd half
            struct_loads_inner=1.0,
            reduction_items=float(contributors),
            label="tc-edge",
        )
