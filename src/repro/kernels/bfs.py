"""Breadth-First Search kernel (level computation from a source).

BFS is the unit-weight instance of the relaxation engine: the fixed point
of ``level[dst] = min(level[dst], level[src] + 1)`` is the hop distance.
Every style of Table 2's BFS column is supported via
:class:`~repro.kernels.relaxation.RelaxationKernel`.
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from ..styles.spec import SemanticKey
from .base import KernelResult
from .relaxation import RelaxationKernel

__all__ = ["BFSKernel"]


class BFSKernel:
    """Style-parameterized BFS from a source vertex."""

    def __init__(self, graph: CSRGraph, source: int = 0):
        self._engine = RelaxationKernel(
            graph, edge_cost="unit", source=source, label="bfs"
        )
        self.graph = graph
        self.source = source

    def run(self, sem: SemanticKey) -> KernelResult:
        return self._engine.run(sem)
