"""Style-parameterized PageRank kernel.

PR is the study's eigenvector problem (Table 1): vertex-based and
topology-driven only, read-modify-write updates, push or pull flow, with
the sum-reduction style axis (Sections 2.10.1/2.10.2) applied to the
per-iteration error reduction.

* **pull** (Listing 4b direction): each vertex gathers neighbor
  contributions — single writer, no atomics.  Deterministic pull is the
  classic Jacobi power iteration; non-deterministic pull updates ranks in
  place (Gauss-Seidel-style, wave-granular visibility), which converges in
  fewer iterations.
* **push** (deterministic only — Section 5.6): each vertex scatters
  ``rank/deg`` into its neighbors' accumulators with atomic adds; an extra
  reset kernel and a finalize kernel bracket the scatter, which is the
  push style's inherent overhead for PR.

Dangling vertices (out-degree 0) distribute their rank uniformly, matching
the serial reference exactly.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..machine.trace import ExecutionTrace, IterationProfile, conflict_stats
from ..styles.axes import Determinism, Flow
from ..styles.spec import SemanticKey
from .base import (
    DIVERGENCE_WINDOW,
    WAVE,
    ConvergenceError,
    DegenerateGraphError,
    DivergenceError,
    KernelResult,
)

__all__ = ["PageRankKernel", "DAMPING", "TOLERANCE"]

DAMPING = 0.85
TOLERANCE = 1e-8
MAX_ITERS = 2000


def _check_residual(label: str, err: float, state: dict) -> None:
    """NaN/Inf sentinel + non-shrinking-residual divergence detection.

    Power iteration's L1 residual contracts geometrically; a residual
    that is non-finite, or fails to reach a new minimum for
    :data:`DIVERGENCE_WINDOW` consecutive iterations, means the state is
    corrupted (planted bug, overflow) and waiting out ``MAX_ITERS`` just
    wastes cycles.
    """
    if not np.isfinite(err):
        raise DivergenceError(f"{label}: residual is {err} — diverging")
    if err < state["best"]:
        state["best"] = err
        state["stale"] = 0
    else:
        state["stale"] += 1
        if state["stale"] >= DIVERGENCE_WINDOW:
            raise DivergenceError(
                f"{label}: residual stopped shrinking for "
                f"{DIVERGENCE_WINDOW} iterations (stuck at {err:g}) — "
                "diverging"
            )


class PageRankKernel:
    """Runs PageRank on one graph in any semantic style."""

    def __init__(self, graph: CSRGraph, label: str = "pr"):
        if graph.n_vertices == 0:
            raise DegenerateGraphError("empty graph")
        self.graph = graph
        self.label = label
        self._src = graph.edge_sources().astype(np.int64)
        self._dst = graph.col_idx.astype(np.int64)
        deg = graph.degrees.astype(np.float64)
        self._dangling = deg == 0
        self._safe_deg = np.where(self._dangling, 1.0, deg)
        self._degrees = graph.degrees
        # Conflict statistics of the push scatter are a property of the
        # graph (every iteration scatters along every edge).
        self._push_conflicts = conflict_stats(graph.col_idx, graph.n_vertices)

    # ------------------------------------------------------------------
    def run(self, sem: SemanticKey) -> KernelResult:
        trace = ExecutionTrace(
            n_edges=self.graph.n_edges,
            n_vertices=self.graph.n_vertices,
            label=f"{self.label}:{sem.flow.value}:{sem.determinism.value}",
        )
        n = self.graph.n_vertices
        rank = np.full(n, 1.0 / n)
        trace.add(
            IterationProfile(
                n_items=n, base_cycles=1.0, shared_stores_base=1.0, label="init"
            )
        )
        if sem.flow is Flow.PUSH:
            self._run_push(rank, trace)
        else:
            self._run_pull(sem, rank, trace)
        return KernelResult(values=rank, trace=trace)

    # ------------------------------------------------------------------
    def _base_term(self, rank: np.ndarray) -> float:
        dangling_mass = float(rank[self._dangling].sum()) / self.graph.n_vertices
        return (1.0 - DAMPING) / self.graph.n_vertices + DAMPING * dangling_mass

    def _run_pull(
        self, sem: SemanticKey, rank: np.ndarray, trace: ExecutionTrace
    ) -> None:
        n = self.graph.n_vertices
        row_ptr = self.graph.row_ptr
        deterministic = sem.determinism is Determinism.DETERMINISTIC
        guard = {"best": float("inf"), "stale": 0}
        for _it in range(MAX_ITERS):
            prev = rank.copy()
            base = self._base_term(rank)
            read = prev if deterministic else rank
            for vbeg in range(0, n, WAVE):
                vend = min(vbeg + WAVE, n)
                lo, hi = int(row_ptr[vbeg]), int(row_ptr[vend])
                new = np.full(vend - vbeg, base)
                if hi > lo:
                    # In the symmetric storage the in-edges of [vbeg, vend)
                    # are exactly their CSR slots with src/dst swapped.
                    contrib = read[self._dst[lo:hi]] / self._safe_deg[self._dst[lo:hi]]
                    np.add.at(new, self._src[lo:hi] - vbeg, DAMPING * contrib)
                rank[vbeg:vend] = new
            err = float(np.abs(rank - prev).sum())
            trace.add(self._pull_profile(n))
            trace.iterations += 1
            if err < TOLERANCE:
                trace.converged = True
                return
            _check_residual(self.label, err, guard)
        raise ConvergenceError(f"{self.label} pull did not converge")

    def _run_push(self, rank: np.ndarray, trace: ExecutionTrace) -> None:
        n = self.graph.n_vertices
        guard = {"best": float("inf"), "stale": 0}
        for _it in range(MAX_ITERS):
            base = self._base_term(rank)
            new = np.full(n, base)
            contrib = DAMPING * rank / self._safe_deg
            np.add.at(new, self._dst, contrib[self._src])
            err = float(np.abs(new - rank).sum())
            rank[:] = new
            for profile in self._push_profiles(n):
                trace.add(profile)
            trace.iterations += 1
            if err < TOLERANCE:
                trace.converged = True
                return
            _check_residual(self.label, err, guard)
        raise ConvergenceError(f"{self.label} push did not converge")

    # ------------------------------------------------------------------
    def _pull_profile(self, n: int) -> IterationProfile:
        return IterationProfile(
            n_items=n,
            inner=self._degrees,
            base_cycles=4.0,  # base term + error update
            inner_cycles=2.0,
            struct_loads_base=2.0,
            struct_loads_inner=1.0,
            shared_loads_base=1.0,  # previous rank for the error term
            shared_loads_inner=2.0,  # neighbor rank + neighbor out-degree
            shared_stores_base=1.0,
            reduction_items=float(n),  # error-sum contributions
            label="pr-pull",
        )

    def _push_profiles(self, n: int):
        """Reset + scatter + finalize kernels of one push iteration."""
        conflict_extra, max_conflict = self._push_conflicts
        yield IterationProfile(
            n_items=n,
            base_cycles=1.0,
            shared_stores_base=1.0,
            label="pr-push-reset",
        )
        yield IterationProfile(
            n_items=n,
            inner=self._degrees,
            base_cycles=3.0,
            inner_cycles=1.0,
            struct_loads_base=2.0,
            struct_loads_inner=1.0,
            shared_loads_base=2.0,  # own rank + own degree
            atomics_inner=1.0,  # atomicAdd per neighbor
            atomic_minmax=False,  # adds: OpenMP atomic handles them
            conflict_extra=conflict_extra,
            max_conflict=max_conflict,
            label="pr-push-scatter",
        )
        yield IterationProfile(
            n_items=n,
            base_cycles=3.0,
            shared_loads_base=2.0,  # new + old rank
            shared_stores_base=1.0,
            reduction_items=float(n),
            label="pr-push-finalize",
        )
