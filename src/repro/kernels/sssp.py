"""Single-Source Shortest Path kernel (Bellman-Ford style).

SSSP is the weighted instance of the relaxation engine — the paper's
running example (Section 2).  Every style of Table 2's SSSP column is
supported via :class:`~repro.kernels.relaxation.RelaxationKernel`.
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from ..styles.spec import SemanticKey
from .base import KernelResult
from .relaxation import RelaxationKernel

__all__ = ["SSSPKernel"]


class SSSPKernel:
    """Style-parameterized Bellman-Ford SSSP from a source vertex."""

    def __init__(self, graph: CSRGraph, source: int = 0):
        if graph.weights is None:
            raise ValueError("SSSP requires a weighted graph")
        self._engine = RelaxationKernel(
            graph, edge_cost="weight", source=source, label="sssp"
        )
        self.graph = graph
        self.source = source

    def run(self, sem: SemanticKey) -> KernelResult:
        return self._engine.run(sem)
