"""Serial reference implementations.

Section 4.1: "Each code verifies its computed solution by comparing it to
the solution of a simple serial algorithm."  These references are written
for clarity and independence from the styled kernels (different algorithmic
formulations where possible), and the runtime checks every styled run
against them.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from .base import INF, vertex_hash_priority

__all__ = [
    "serial_bfs",
    "serial_sssp",
    "serial_cc",
    "serial_mis",
    "serial_pagerank",
    "serial_triangle_count",
    "is_maximal_independent_set",
    "canonical_components",
]


def serial_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distances from ``source`` (queue-based BFS); unreached = INF."""
    n = graph.n_vertices
    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if dist[u] == INF:
                    dist[u] = depth
                    nxt.append(int(u))
        frontier = nxt
    return dist


def serial_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Shortest path distances from ``source`` (Dijkstra); unreached = INF."""
    if graph.weights is None:
        raise ValueError("SSSP requires edge weights")
    n = graph.n_vertices
    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    heap = [(0, source)]
    col, w, row_ptr = graph.col_idx, graph.weights, graph.row_ptr
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for i in range(row_ptr[v], row_ptr[v + 1]):
            u = int(col[i])
            nd = d + int(w[i])
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


def serial_cc(graph: CSRGraph) -> np.ndarray:
    """Connected-component labels: each vertex gets the smallest vertex id
    in its component (union-find with path compression)."""
    n = graph.n_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    src = graph.edge_sources()
    for s, d in zip(src.tolist(), graph.col_idx.tolist()):
        rs, rd = find(s), find(d)
        if rs != rd:
            # Union by smaller id, so roots are component minima.
            if rs < rd:
                parent[rd] = rs
            else:
                parent[rs] = rd
    return np.array([find(v) for v in range(n)], dtype=np.int64)


def canonical_components(labels: np.ndarray) -> np.ndarray:
    """Normalize arbitrary component labels to the component-minimum id."""
    labels = np.asarray(labels)
    out = np.empty_like(labels)
    seen = {}
    # Map each label to the minimum vertex id carrying it.
    for v, lab in enumerate(labels.tolist()):
        if lab not in seen or v < seen[lab]:
            seen[lab] = v
    for v, lab in enumerate(labels.tolist()):
        out[v] = seen[lab]
    return out


def serial_mis(graph: CSRGraph, priorities: Optional[np.ndarray] = None) -> np.ndarray:
    """A maximal independent set by greedy priority order.

    Returns ``int8[n]`` with 1 = in the set, 0 = out.  Uses the same hash
    priorities as the parallel kernels, so the *set itself* matches the
    Luby-style kernels' fixed point (highest-priority-first greedy is
    exactly the sequential elimination order Luby rounds emulate).
    """
    n = graph.n_vertices
    if priorities is None:
        priorities = vertex_hash_priority(n)
    order = np.lexsort((np.arange(n), -priorities))
    status = np.zeros(n, dtype=np.int8)  # 0 undecided, 1 in, 2 out
    for v in order.tolist():
        if status[v] == 0:
            status[v] = 1
            nbrs = graph.neighbors(v)
            status[nbrs[status[nbrs] == 0]] = 2
    return (status == 1).astype(np.int8)


def is_maximal_independent_set(graph: CSRGraph, in_set: np.ndarray) -> bool:
    """Check independence (no two set members adjacent) and maximality
    (every non-member has a member neighbor)."""
    in_set = np.asarray(in_set).astype(bool)
    src = graph.edge_sources()
    dst = graph.col_idx
    if np.any(in_set[src] & in_set[dst]):
        return False
    # Maximality: non-members must see a member.
    covered = np.zeros(graph.n_vertices, dtype=bool)
    member_edges = in_set[src]
    covered[dst[member_edges]] = True
    return bool(np.all(covered | in_set))


def serial_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 1000,
) -> np.ndarray:
    """Power iteration PageRank (Jacobi), float64.

    Zero-out-degree vertices distribute their rank uniformly (the standard
    dangling-node correction), so ranks sum to 1.
    """
    n = graph.n_vertices
    deg = graph.degrees.astype(np.float64)
    src = graph.edge_sources()
    dst = graph.col_idx
    rank = np.full(n, 1.0 / n)
    dangling = deg == 0
    safe_deg = np.where(dangling, 1.0, deg)
    for _ in range(max_iters):
        contrib = rank / safe_deg
        new = np.zeros(n)
        np.add.at(new, dst, contrib[src])
        dangling_mass = rank[dangling].sum() / n
        new = (1.0 - damping) / n + damping * (new + dangling_mass)
        if np.abs(new - rank).sum() < tol:
            return new
        rank = new
    return rank


def serial_triangle_count(graph: CSRGraph) -> int:
    """Exact triangle count by per-edge sorted-set intersection."""
    n = graph.n_vertices
    forward = [set() for _ in range(n)]
    src = graph.edge_sources()
    for s, d in zip(src.tolist(), graph.col_idx.tolist()):
        if s < d:
            forward[s].add(d)
    total = 0
    for s in range(n):
        fs = forward[s]
        for d in fs:
            total += len(fs & forward[d])
    return total
