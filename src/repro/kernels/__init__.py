"""Style-parameterized kernels for the six graph problems (Table 1)."""

from .base import (
    INF,
    WAVE,
    ConvergenceError,
    DegenerateGraphError,
    DivergenceError,
    KernelResult,
    flat_neighbors,
    sequential_improving,
    vertex_hash_priority,
    wave_slices,
)
from .bfs import BFSKernel
from .cc import CCKernel
from .mis import IN_SET, OUT, UNDECIDED, MISKernel
from .pr import DAMPING, TOLERANCE, PageRankKernel
from .registry import PROBLEM_CATEGORIES, StyledKernel, build_kernel
from .relaxation import RelaxationKernel
from .serial import (
    canonical_components,
    is_maximal_independent_set,
    serial_bfs,
    serial_cc,
    serial_mis,
    serial_pagerank,
    serial_sssp,
    serial_triangle_count,
)
from .sssp import SSSPKernel
from .tc import TriangleCountKernel

__all__ = [
    "INF",
    "WAVE",
    "ConvergenceError",
    "DivergenceError",
    "DegenerateGraphError",
    "KernelResult",
    "flat_neighbors",
    "sequential_improving",
    "wave_slices",
    "vertex_hash_priority",
    "RelaxationKernel",
    "BFSKernel",
    "SSSPKernel",
    "CCKernel",
    "MISKernel",
    "UNDECIDED",
    "IN_SET",
    "OUT",
    "PageRankKernel",
    "DAMPING",
    "TOLERANCE",
    "TriangleCountKernel",
    "build_kernel",
    "StyledKernel",
    "PROBLEM_CATEGORIES",
    "serial_bfs",
    "serial_sssp",
    "serial_cc",
    "serial_mis",
    "serial_pagerank",
    "serial_triangle_count",
    "is_maximal_independent_set",
    "canonical_components",
]
