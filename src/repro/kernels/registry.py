"""Kernel registry: algorithm -> style-parameterized kernel factory.

The runtime builds one kernel per (algorithm, graph) and reuses it across
all semantic style combinations (kernels precompute flat edge views and
other graph-derived state).
"""

from __future__ import annotations

from typing import Dict, Protocol

from ..graph.csr import CSRGraph
from ..styles.axes import Algorithm
from ..styles.spec import SemanticKey
from .base import KernelResult
from .bfs import BFSKernel
from .cc import CCKernel
from .mis import MISKernel
from .pr import PageRankKernel
from .sssp import SSSPKernel
from .tc import TriangleCountKernel

__all__ = ["StyledKernel", "build_kernel", "PROBLEM_CATEGORIES"]

#: Table 1 of the paper: problem categories.
PROBLEM_CATEGORIES: Dict[Algorithm, str] = {
    Algorithm.CC: "Connectivity",
    Algorithm.MIS: "Covering",
    Algorithm.PR: "Eigenvector",
    Algorithm.TC: "Substructure",
    Algorithm.BFS: "Shortest path",
    Algorithm.SSSP: "Shortest path",
}


class StyledKernel(Protocol):
    """A kernel that can execute any applicable semantic style."""

    def run(self, sem: SemanticKey) -> KernelResult: ...


def build_kernel(
    algorithm: Algorithm, graph: CSRGraph, source: int = 0
) -> StyledKernel:
    """Construct the style-parameterized kernel for one algorithm."""
    if algorithm is Algorithm.BFS:
        return BFSKernel(graph, source)
    if algorithm is Algorithm.SSSP:
        return SSSPKernel(graph, source)
    if algorithm is Algorithm.CC:
        return CCKernel(graph)
    if algorithm is Algorithm.MIS:
        return MISKernel(graph)
    if algorithm is Algorithm.PR:
        return PageRankKernel(graph)
    if algorithm is Algorithm.TC:
        return TriangleCountKernel(graph)
    raise ValueError(f"unknown algorithm {algorithm!r}")
