"""Connected Components kernel (min-label propagation).

CC is the zero-cost instance of the relaxation engine: every vertex starts
with its own id as its label and the fixed point of
``label[dst] = min(label[dst], label[src])`` assigns every vertex the
minimum id of its component.  Data-driven runs start with all vertices
(every label is initially "dirty").
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from ..styles.spec import SemanticKey
from .base import KernelResult
from .relaxation import RelaxationKernel

__all__ = ["CCKernel"]


class CCKernel:
    """Style-parameterized connected-components labeling."""

    def __init__(self, graph: CSRGraph):
        self._engine = RelaxationKernel(graph, edge_cost="zero", label="cc")
        self.graph = graph

    def run(self, sem: SemanticKey) -> KernelResult:
        return self._engine.run(sem)
